// Package jobs is the async ingest layer's job-queue machinery: a bounded
// queue of submitted jobs, a worker pool that drains it, a per-job state
// machine (queued → running → done|failed|canceled), per-job progress
// counters, and result retention with an in-memory cap, optional disk
// spill, and TTL-based reaping of finished jobs.
//
// The package is deliberately engine-agnostic: a job is "total inputs plus
// a Runner that turns a contiguous chunk of them into encoded NDJSON
// lines". The engine layer supplies runners that close over CheckBatch or
// CompleteBatch; tests supply runners that block, fail, or count. Chunked
// execution is what makes progress reporting and cancel-while-running
// possible without teaching the batch workers about jobs: the manager
// checks for cancellation between chunks, so a canceled job stops within
// one chunk's worth of work and keeps the results it already produced.
//
// Job state is persisted through a jobstore.Store: every lifecycle
// transition appends an event, with the Submitted event written ahead of
// queueing. With a durable store (internal/jobs/walstore) a restarted
// manager calls Recover to replay the log — re-serving finished jobs and
// re-queueing interrupted ones from their last durable chunk boundary —
// so jobs outlive the process. The default in-memory store
// (internal/jobs/memstore) preserves the zero-config in-process behavior.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/jobs/jobstore"
	"repro/internal/jobs/memstore"
)

// State is one point in the job lifecycle. The machine is
// queued → running → done|failed|canceled, with one shortcut: a job
// canceled while still queued goes straight to canceled without running.
type State int32

// The job lifecycle states.
const (
	// Queued: accepted, waiting for a job worker.
	Queued State = iota
	// Running: a worker is draining the job's chunks.
	Running
	// Done: every input processed; results complete.
	Done
	// Failed: a chunk returned an error; results up to that chunk are kept.
	Failed
	// Canceled: canceled before or during execution; partial results kept.
	Canceled
)

// String names the state for wire and log use.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s == Done || s == Failed || s == Canceled }

// parseState maps a wire/log name back to a State — the inverse of
// String, used when replaying persisted terminal records.
func parseState(s string) (State, bool) {
	switch s {
	case "queued":
		return Queued, true
	case "running":
		return Running, true
	case "done":
		return Done, true
	case "failed":
		return Failed, true
	case "canceled":
		return Canceled, true
	}
	return 0, false
}

// Runner produces the results for one contiguous chunk [lo, hi) of a job's
// inputs: one encoded NDJSON line per input, in input order. A non-nil
// error fails the whole job (results of earlier chunks are retained).
type Runner func(lo, hi int) ([][]byte, error)

// Submission describes a persisted job submission replayed from the
// store: the identity and shape of the job plus the submitter-owned
// payload from which its Runner can be rebuilt.
type Submission struct {
	// ID is the persisted job id.
	ID string
	// Kind is the workload kind the job was submitted with.
	Kind string
	// Total is the submitted input count.
	Total int
	// Chunk is the chunk size the job was submitted with.
	Chunk int
	// Payload is the opaque blob the submitter persisted alongside the
	// submission (for the engine: serialized documents + schema refs).
	Payload []byte
}

// RunnerResolver rebuilds a Runner from a persisted submission during
// Recover. An error marks the job Failed (with the error message) rather
// than losing it — the poller sees a terminal state, not a 404.
type RunnerResolver func(sub Submission) (Runner, error)

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// Requeued counts interrupted jobs put back on the queue (including
	// the Resumed ones).
	Requeued int `json:"requeued"`
	// Resumed counts requeued jobs restarting from a durable mid-job
	// chunk boundary rather than from input zero.
	Resumed int `json:"resumed"`
	// Served counts finished jobs re-registered for result serving.
	Served int `json:"served"`
	// Failed counts jobs whose Runner could not be rebuilt; they are
	// registered in state failed.
	Failed int `json:"failed"`
}

// Total returns how many persisted jobs the pass brought back.
func (r RecoveryStats) Total() int { return r.Requeued + r.Served + r.Failed }

// ErrQueueFull rejects a submission when the job queue is at capacity —
// the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("jobs: queue is full")

// ErrClosed rejects a submission after the manager has been closed.
var ErrClosed = errors.New("jobs: manager is closed")

// ErrRecoverAfterStart rejects a Recover call after the worker pool has
// started: replay must finish before the first Submit, or recovered ids
// could collide with the startup sweep and live submissions.
var ErrRecoverAfterStart = errors.New("jobs: Recover must be called before the first Submit")

// Defaults for Config zero values.
const (
	// DefaultWorkers is the default number of concurrent jobs.
	DefaultWorkers = 2
	// DefaultQueueDepth is the default bound on jobs accepted but not yet
	// running.
	DefaultQueueDepth = 64
	// DefaultResultTTL is how long a finished job and its results are
	// retained by default.
	DefaultResultTTL = 15 * time.Minute
	// DefaultChunk is the default number of inputs per Runner call — the
	// granularity of progress updates and cancellation.
	DefaultChunk = 64
	// DefaultBufferedResults is the default per-job count of encoded result
	// lines held in memory before spilling to disk (when a spill directory
	// is configured).
	DefaultBufferedResults = 4096
	// DefaultSpillOrphanAge is how stale another instance's spill
	// namespace must be before the startup sweep reclaims it. Live
	// managers refresh their namespace's mtime from the reaper loop (every
	// ≤30s), so an hour of staleness means the owner is gone.
	DefaultSpillOrphanAge = time.Hour
)

// Config parameterizes a Manager. The zero value selects the defaults
// above with no disk spill and in-process-only job state.
type Config struct {
	// Workers bounds how many jobs execute concurrently; <=0 selects
	// DefaultWorkers. Each job's chunks still run through whatever
	// concurrency its Runner provides (for the engine: the engine-wide
	// worker semaphore), so this bounds job-level parallelism, not CPU use.
	Workers int
	// QueueDepth bounds jobs accepted but not yet claimed by a worker; a
	// full queue makes Submit fail with ErrQueueFull. <=0 selects
	// DefaultQueueDepth.
	QueueDepth int
	// ResultTTL is how long a finished job (and its buffered results) is
	// retained before the reaper removes it; <=0 selects DefaultResultTTL.
	ResultTTL time.Duration
	// Chunk is the number of inputs per Runner call; <=0 selects
	// DefaultChunk.
	Chunk int
	// BufferedResults caps the encoded result lines a job holds in memory;
	// past the cap, results spill to a file under SpillDir. <=0 selects
	// DefaultBufferedResults. Without a SpillDir the buffer simply keeps
	// growing (bounded by the submitted batch size). Jobs on a durable
	// store ignore the cap and write results through to disk as produced,
	// so a restart can re-serve or resume them.
	BufferedResults int
	// SpillDir, when non-empty, is the spill root. A manager on a volatile
	// store writes one NDJSON file per overflowing job under a private
	// SpillDir/<instance-id> namespace (created lazily, removed at
	// reap/delete); instance ids — not pids, which containers recycle —
	// plus an age-based sweep let processes share a root without a new
	// process destroying a live sibling's files or leaking a dead one's.
	// A manager on a durable store instead writes every job's results
	// under SpillDir/results, where a restarted manager finds them.
	SpillDir string
	// SpillOrphanAge overrides how stale a foreign spill namespace must be
	// before the startup sweep removes it; <=0 selects
	// DefaultSpillOrphanAge.
	SpillOrphanAge time.Duration
	// Store is the job-event log. nil selects an in-memory store
	// (today's zero-config behavior: job state dies with the process).
	// A durable store — internal/jobs/walstore — makes Submit write-ahead
	// and Recover meaningful. A durable store requires a SpillDir: results
	// are re-served and resumed from the write-through files under
	// SpillDir/results, so without one every recovered done job degrades
	// to failed ("recovered results incomplete") and interrupted jobs
	// restart from input zero.
	Store jobstore.Store
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = DefaultWorkers
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.ResultTTL <= 0 {
		out.ResultTTL = DefaultResultTTL
	}
	if out.Chunk <= 0 {
		out.Chunk = DefaultChunk
	}
	if out.BufferedResults <= 0 {
		out.BufferedResults = DefaultBufferedResults
	}
	if out.SpillOrphanAge <= 0 {
		out.SpillOrphanAge = DefaultSpillOrphanAge
	}
	if out.Store == nil {
		out.Store = memstore.New()
	}
	return out
}

// Manager owns the job table, the bounded queue and the worker pool.
// Workers and the reaper start lazily on the first Submit, so constructing
// a Manager (every engine carries one) costs nothing until async ingest is
// actually used. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	store   jobstore.Store
	durable bool
	// instance is this process's random namespace id ("i-" + 12 hex).
	instance string
	// spillDir is this instance's private namespace under cfg.SpillDir
	// (volatile store only; "" when spilling is disabled).
	spillDir string
	// resultsDir is the stable write-through results directory under
	// cfg.SpillDir (durable store only).
	resultsDir string

	mu       sync.Mutex
	cond     *sync.Cond // signals workers: pending grew, or closed
	jobs     map[string]*Job
	pending  []*Job // submitted, not yet claimed by a worker; bounded by QueueDepth
	reserved int    // queue slots held across an in-flight Submit's WAL append
	closed   bool

	start       sync.Once
	poolStarted atomic.Bool
	recoverRan  atomic.Bool // a Recover pass replayed the store (gates the results sweep)
	stop        chan struct{}
	runWG       sync.WaitGroup // running jobs; Add under m.mu while claiming
	storeOnce   sync.Once      // closes the store once, after running jobs drain

	// Lifetime counters (gauges are derived from the job table).
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	reaped    atomic.Int64
	recovered atomic.Int64
}

// NewManager builds a manager; workers start on first use.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		store:    cfg.Store,
		durable:  cfg.Store.Durable(),
		instance: newInstanceID(),
		jobs:     map[string]*Job{},
		stop:     make(chan struct{}),
	}
	if cfg.SpillDir != "" {
		if m.durable {
			m.resultsDir = filepath.Join(cfg.SpillDir, "results")
		} else {
			m.spillDir = filepath.Join(cfg.SpillDir, m.instance)
		}
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Durable reports whether the manager's store survives the process — i.e.
// whether submissions are written ahead and Recover can bring jobs back.
func (m *Manager) Durable() bool { return m.durable }

// Close stops the worker pool and the reaper. Queued jobs are finalized
// as Canceled (their Done channels close — no waiter is left hanging);
// running jobs finish their current chunk and then observe the shutdown
// as a cancellation. Submissions after Close fail with ErrClosed.
//
// Close does not wait for running jobs and does not persist terminal
// records for the jobs it interrupts: on a durable store they replay as
// interrupted and a restarted manager re-runs them, which is exactly the
// crash-safety contract. Use Shutdown to wait for the drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	// The closed flag (flipped exactly once, above) makes Close idempotent
	// without ever starting a pool that no Submit asked for.
	close(m.stop)
	m.cond.Broadcast()
	for _, j := range pending {
		// cancelQueued loses only to a worker that claimed the job before
		// the pending queue was emptied (it will self-cancel between
		// chunks) or to a concurrent Cancel — either way the job still
		// terminates. persist=false: a shutdown is not a user cancel; on a
		// durable store the job must replay as interrupted.
		if j.cancelQueued(false) {
			m.canceled.Add(1)
		}
	}
	// Release the store once the in-flight jobs have observed the stop
	// signal and finalized — their terminal appends must not race Close.
	go func() {
		m.runWG.Wait()
		m.closeStore()
	}()
}

// Shutdown closes the manager and waits — bounded by ctx — until running
// jobs have finalized and the store has been released. It returns
// ctx.Err() if the drain outlives the context (the background drain keeps
// going; the store still closes once it completes).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.Close()
	done := make(chan struct{})
	go func() {
		m.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.closeStore()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeStore releases the store exactly once.
func (m *Manager) closeStore() {
	m.storeOnce.Do(func() { _ = m.store.Close() })
}

// append stamps and appends one event, best-effort: transition records
// after the write-ahead Submitted append must not fail the job over a log
// hiccup (the in-memory state machine is still authoritative for this
// process's lifetime).
func (m *Manager) append(ev *jobstore.Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	_ = m.store.Append(ev)
}

// startPool sweeps orphaned spill state, then launches the worker pool
// and the reaper (under m.start).
func (m *Manager) startPool() {
	m.poolStarted.Store(true)
	m.sweepSpillDir()
	for i := 0; i < m.cfg.Workers; i++ {
		go m.worker()
	}
	go m.reaper()
}

// sweepSpillDir reclaims spill state orphaned by dead instances: job
// state a restart cannot reach would otherwise accumulate across
// restarts. Runs once, at pool start.
func (m *Manager) sweepSpillDir() {
	if m.cfg.SpillDir == "" {
		return
	}
	m.sweepNamespaces()
	if m.durable && m.recoverRan.Load() {
		m.sweepResults()
	}
}

// sweepNamespaces removes foreign per-instance spill namespaces (and
// legacy pid-keyed ones) that are provably or probably dead. Instance
// namespaces are reclaimed purely by age: a live owner refreshes its
// directory mtime from the reaper loop far more often than the orphan
// age, so staleness means the owner is gone — no pid liveness guesswork,
// which containers break by recycling pids. Legacy numeric directories
// (pre-instance-id layout) are removed when their pid is dead or the
// directory has gone stale; the age fallback is what reclaims them when
// a recycled pid makes the liveness probe lie.
func (m *Manager) sweepNamespaces() {
	ents, err := os.ReadDir(m.cfg.SpillDir)
	if err != nil {
		return // no dir yet (or unreadable): nothing to reclaim
	}
	cutoff := time.Now().Add(-m.cfg.SpillOrphanAge)
	self := os.Getpid()
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		stale := false
		if pid, err := strconv.Atoi(name); err == nil {
			stale = pid != self && (pidDead(pid) || olderThan(ent, cutoff))
		} else if strings.HasPrefix(name, "i-") && name != m.instance {
			stale = olderThan(ent, cutoff)
		}
		if stale {
			_ = os.RemoveAll(filepath.Join(m.cfg.SpillDir, name))
		}
	}
}

// sweepResults prunes write-through result files whose job is no longer
// in the table — leftovers of jobs the log has already retired. It runs
// only when a Recover pass has replayed the store (the recoverRan gate)
// and after that pass registered every replayable job (enforced by
// ErrRecoverAfterStart), so a recovered job's results are never swept. A
// manager whose caller skips Recover leaves prior jobs' result files in
// place — the log still retains their histories, and deleting the files
// would degrade those jobs to failed on the next Recover.
func (m *Manager) sweepResults() {
	ents, err := os.ReadDir(m.resultsDir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		id := strings.TrimSuffix(ent.Name(), ".ndjson")
		m.mu.Lock()
		_, live := m.jobs[id]
		m.mu.Unlock()
		if !live {
			_ = os.Remove(filepath.Join(m.resultsDir, ent.Name()))
		}
	}
}

// olderThan reports whether the entry's mtime is before the cutoff.
func olderThan(ent os.DirEntry, cutoff time.Time) bool {
	fi, err := ent.Info()
	return err == nil && fi.ModTime().Before(cutoff)
}

// pidDead reports whether no process with the given pid exists anymore.
// False negatives (a recycled pid) only postpone reclamation until the
// age-based sweep catches the directory.
func pidDead(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return true
	}
	return errors.Is(p.Signal(syscall.Signal(0)), os.ErrProcessDone)
}

// newID draws a 128-bit random hex job id.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// newInstanceID draws the process-lifetime spill namespace id. The "i-"
// prefix keeps instance directories distinguishable from legacy pid
// directories and from the fixed "results"/"wal"/"payload" names sharing
// a durable root.
func newInstanceID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random instance id: %v", err))
	}
	return "i-" + hex.EncodeToString(b[:])
}

// Submit enqueues a job over total inputs executed by run, in chunks. The
// payload is the submitter-owned blob persisted with the submission, from
// which a RunnerResolver can rebuild the Runner after a restart; nil is
// fine when the store is volatile (or the job is acceptable to lose).
//
// The submission is written ahead: the store append — durable before
// return on a durable store — happens before the job becomes visible or
// runnable, so a crash after Submit returns can never lose the job. It
// fails with ErrQueueFull when the queue is at capacity and ErrClosed
// after Close; otherwise the job is Queued and will be claimed by a
// worker. A zero-input job completes without ever invoking run.
func (m *Manager) Submit(kind string, total int, payload []byte, run Runner) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()
	m.start.Do(m.startPool)
	j := &Job{
		m:       m,
		id:      newID(),
		kind:    kind,
		total:   total,
		chunk:   m.cfg.Chunk,
		run:     run,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	j.state.Store(int32(Queued))
	// Reserve the queue slot before the store append so the QueueDepth
	// bound stays exact, but run the append — an fsync on a durable store
	// — outside m.mu so it never stalls Get/List/Stats.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.pending)+m.reserved >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.reserved++
	m.mu.Unlock()
	err := m.store.Append(&jobstore.Event{
		Type:    jobstore.Submitted,
		Job:     j.id,
		Time:    j.created,
		Kind:    kind,
		Total:   total,
		Chunk:   j.chunk,
		Payload: payload,
	})
	m.mu.Lock()
	m.reserved--
	if err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: persisting submission: %w", err)
	}
	if m.closed {
		m.mu.Unlock()
		// The write-ahead record exists but the job will never run here;
		// retire it so a restart does not resurrect a submission whose
		// caller got an error.
		m.append(&jobstore.Event{Type: jobstore.Removed, Job: j.id})
		return nil, ErrClosed
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.cond.Signal()
	m.submitted.Add(1)
	return j, nil
}

// Recover replays the store and rebuilds the job table: finished jobs are
// re-registered for result serving (with their persisted results, when
// intact), interrupted jobs are re-queued — resuming from the last
// durable chunk boundary when their partial results survived — and jobs
// whose Runner cannot be rebuilt are registered as Failed so pollers get
// a terminal answer instead of a 404.
//
// Recover must run before the first Submit (it returns
// ErrRecoverAfterStart otherwise): the startup sweep and id namespace
// assume replay happens on a quiet manager. On a fresh or volatile store
// it is a cheap no-op.
func (m *Manager) Recover(resolve RunnerResolver) (RecoveryStats, error) {
	var stats RecoveryStats
	if m.poolStarted.Load() {
		return stats, ErrRecoverAfterStart
	}
	// Fold the log into one history per job. Resume decisions trust only
	// chunk-aligned Progress records (alignedDone/alignedBytes): the final
	// chunk of a job whose total is not a chunk multiple commits a
	// non-aligned record, and resuming from "done rounded down" while the
	// results file already covers all done inputs would re-run that chunk
	// and duplicate its lines. The newest record overall (done/resultBytes)
	// still matters: when it covers every input, the job finished and only
	// its terminal record was lost.
	type history struct {
		sub          *jobstore.Event
		done         int
		resultBytes  int64
		alignedDone  int
		alignedBytes int64
		fin          *jobstore.Event
	}
	hists := map[string]*history{}
	var order []string
	err := m.store.Replay(func(ev *jobstore.Event) error {
		h := hists[ev.Job]
		if h == nil {
			if ev.Type != jobstore.Submitted {
				return nil // orphan transition (its Submitted record was lost)
			}
			h = &history{}
			hists[ev.Job] = h
			order = append(order, ev.Job)
		}
		switch ev.Type {
		case jobstore.Submitted:
			if h.sub == nil {
				e := *ev
				h.sub = &e
			}
		case jobstore.Progress:
			if ev.Done >= h.done {
				h.done, h.resultBytes = ev.Done, ev.ResultBytes
			}
			chunk := h.sub.Chunk
			if chunk <= 0 {
				chunk = m.cfg.Chunk
			}
			if ev.Done%chunk == 0 && ev.Done >= h.alignedDone {
				h.alignedDone, h.alignedBytes = ev.Done, ev.ResultBytes
			}
		case jobstore.Finished:
			e := *ev
			h.fin = &e
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("jobs: replaying store: %w", err)
	}
	// The replay succeeded: the job table (populated below) is now
	// authoritative for which result files are live, so the startup sweep
	// may prune the rest.
	m.recoverRan.Store(true)
	now := time.Now()
	var recovered []*Job
	var requeue []*Job
	for _, id := range order {
		h := hists[id]
		chunk := h.sub.Chunk
		if chunk <= 0 {
			chunk = m.cfg.Chunk
		}
		j := &Job{
			m:         m,
			id:        id,
			kind:      h.sub.Kind,
			total:     h.sub.Total,
			chunk:     chunk,
			created:   h.sub.Time,
			recovered: true,
			done:      make(chan struct{}),
		}
		switch {
		case h.fin != nil:
			m.recoverFinished(j, h.fin)
			stats.Served++
		case h.sub.Total > 0 && h.done >= h.sub.Total && m.resultsIntact(id, h.resultBytes):
			// Every input completed and its results are durable — the crash
			// only lost the terminal record (the final chunk of a total that
			// is not a chunk multiple commits a non-aligned Progress record,
			// so this is the common shape of that crash window). Finalize as
			// Done rather than re-queue: resuming from the last aligned
			// boundary would re-run the final chunk and append lines the
			// results file already holds. The synthesized terminal record is
			// persisted so the next restart replays it as finished outright.
			fin := &jobstore.Event{
				Type:        jobstore.Finished,
				Job:         id,
				State:       Done.String(),
				Done:        h.done,
				ResultBytes: h.resultBytes,
				Time:        now,
			}
			m.recoverFinished(j, fin)
			m.append(fin)
			stats.Served++
		default:
			run, rerr := resolve(Submission{
				ID:      id,
				Kind:    h.sub.Kind,
				Total:   h.sub.Total,
				Chunk:   chunk,
				Payload: h.sub.Payload,
			})
			if rerr != nil {
				// Unrecoverable submission: fail it terminally — and persist
				// the verdict, so the next restart serves the failure instead
				// of retrying a resolve that cannot succeed.
				j.state.Store(int32(Failed))
				j.errMsg = fmt.Sprintf("recovering job: %v", rerr)
				t := now
				j.finished = &t
				close(j.done)
				m.append(&jobstore.Event{
					Type:  jobstore.Finished,
					Job:   id,
					State: Failed.String(),
					Error: j.errMsg,
				})
				m.failed.Add(1)
				stats.Failed++
			} else {
				resume := m.recoverResume(j, h.alignedDone, h.alignedBytes)
				j.run = run
				j.resume = resume
				j.doneDocs.Store(int64(resume))
				j.state.Store(int32(Queued))
				requeue = append(requeue, j)
				stats.Requeued++
				if resume > 0 {
					stats.Resumed++
				}
			}
		}
		recovered = append(recovered, j)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return RecoveryStats{}, ErrClosed
	}
	for _, j := range recovered {
		m.jobs[j.id] = j
	}
	m.pending = append(m.pending, requeue...)
	m.mu.Unlock()
	m.recovered.Add(int64(len(recovered)))
	if len(requeue) > 0 {
		// Replay found runnable work: the pool must start now, not on some
		// future Submit that may never come.
		m.start.Do(m.startPool)
		m.cond.Broadcast()
	}
	return stats, nil
}

// recoverFinished re-registers a finished job from its terminal record,
// re-attaching the persisted results when they are intact. A done job
// whose result file went missing or came up short degrades to failed —
// never a 200 that silently serves a truncated verdict set as complete.
func (m *Manager) recoverFinished(j *Job, fin *jobstore.Event) {
	st, ok := parseState(fin.State)
	if !ok || !st.Finished() {
		st = Failed
		j.errMsg = fmt.Sprintf("recovered terminal record has invalid state %q", fin.State)
	}
	j.errMsg = firstNonEmpty(j.errMsg, fin.Error)
	j.receiptRoot = fin.Root
	j.doneDocs.Store(int64(fin.Done))
	if fin.ResultBytes > 0 {
		path := m.resultsPath(j.id)
		fi, err := os.Stat(path)
		switch {
		case path != "" && err == nil && fi.Size() >= fin.ResultBytes:
			// Intact (possibly with a torn tail past the recorded bytes —
			// results are written before the record, so the file is only
			// ever longer). Trim to the durable prefix.
			_ = os.Truncate(path, fin.ResultBytes)
			j.spillPath = path
			j.resultBytes = fin.ResultBytes
		case path != "" && err == nil && st != Done:
			// A failed/canceled job's results were partial anyway; keep the
			// shorter-than-recorded remnant rather than dropping it.
			j.spillPath = path
			j.resultBytes = fi.Size()
		default:
			if st == Done {
				st = Failed
				j.errMsg = "recovered results incomplete"
			}
		}
	}
	j.state.Store(int32(st))
	t := fin.Time
	j.finished = &t
	close(j.done)
}

// recoverResume validates an interrupted job's durable progress and
// returns the input offset to resume from: the recorded chunk boundary
// when the write-through results file covers it, zero (full re-run, file
// removed) otherwise. The caller passes only chunk-aligned progress (the
// replay fold filters for it): truncating the file to a record's bytes is
// only resume-safe when the record sits exactly on the boundary execution
// restarts from — a non-aligned record's bytes cover inputs the resumed
// run would produce again. Results are written to the file before the
// progress record is appended, so a file at least as long as the recorded
// bytes is guaranteed intact up to them; truncating to the recorded
// length drops any torn tail from the interrupted chunk and keeps the
// replayed output byte-identical to an uninterrupted run.
func (m *Manager) recoverResume(j *Job, done int, resultBytes int64) int {
	path := m.resultsPath(j.id)
	if done <= 0 || done%j.chunk != 0 || path == "" {
		if path != "" {
			_ = os.Remove(path)
		}
		return 0
	}
	if resultBytes > 0 {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() < resultBytes {
			_ = os.Remove(path)
			return 0
		}
		_ = os.Truncate(path, resultBytes)
		j.spillPath = path
		j.resultBytes = resultBytes
	} else {
		_ = os.Remove(path)
	}
	return done
}

// resultsIntact reports whether the write-through results file for id
// holds at least n durable bytes — the precondition for serving a
// recovered job's results as complete.
func (m *Manager) resultsIntact(id string, n int64) bool {
	if n <= 0 {
		return false
	}
	path := m.resultsPath(id)
	if path == "" {
		return false
	}
	fi, err := os.Stat(path)
	return err == nil && fi.Size() >= n
}

// resultsPath is the write-through results file for a job id ("" when the
// manager has no durable results directory).
func (m *Manager) resultsPath(id string) string {
	if m.resultsDir == "" {
		return ""
	}
	return filepath.Join(m.resultsDir, id+".ndjson")
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// Get returns the job with the given id, if it is still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every retained job, newest submission first.
func (m *Manager) List() []Info {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Info, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.After(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel requests cancellation of the job with the given id. A queued job
// becomes Canceled immediately and never runs; a running job stops at its
// next chunk boundary, keeping the results produced so far; a finished job
// is left untouched (Cancel then reports false). The boolean is whether a
// cancellation was actually delivered; unknown ids return ErrNotFound.
func (m *Manager) Cancel(id string) (bool, error) {
	j, ok := m.Get(id)
	if !ok {
		return false, ErrNotFound
	}
	return j.Cancel(), nil
}

// Remove drops a finished job from the table right now (freeing its
// buffered results and spill file, and retiring its log history) — the
// DELETE-a-finished-job semantics. Active jobs are not removable; cancel
// them first. It reports whether the job was removed.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || !State(j.state.Load()).Finished() {
		m.mu.Unlock()
		return false
	}
	delete(m.jobs, id)
	m.mu.Unlock()
	j.cleanup()
	m.append(&jobstore.Event{Type: jobstore.Removed, Job: id})
	m.reaped.Add(1)
	return true
}

// ErrNotFound reports an unknown (or already reaped) job id — the HTTP
// layer maps it to 404.
var ErrNotFound = errors.New("jobs: no such job")

// nl terminates one NDJSON line.
var nl = []byte{'\n'}

// Reap sweeps finished jobs whose retention TTL has expired, returning how
// many were removed. The background reaper calls it periodically; tests
// (and operators wanting immediate reclamation) may call it directly.
func (m *Manager) Reap() int {
	cutoff := time.Now().Add(-m.cfg.ResultTTL)
	var expired []*Job
	m.mu.Lock()
	for id, j := range m.jobs {
		if fin, ok := j.finishedAt(); ok && fin.Before(cutoff) {
			delete(m.jobs, id)
			expired = append(expired, j)
		}
	}
	m.mu.Unlock()
	for _, j := range expired {
		j.cleanup()
		m.append(&jobstore.Event{Type: jobstore.Removed, Job: j.id})
	}
	m.reaped.Add(int64(len(expired)))
	return len(expired)
}

// reaper periodically sweeps expired jobs until Close, and keeps this
// instance's spill namespace visibly alive (mtime refresh) so sibling
// sweeps never mistake it for an orphan.
func (m *Manager) reaper() {
	period := m.cfg.ResultTTL / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Reap()
			m.touchSpillDir()
		}
	}
}

// touchSpillDir refreshes the instance namespace's mtime — the liveness
// signal the age-based orphan sweep keys on.
func (m *Manager) touchSpillDir() {
	if m.spillDir == "" {
		return
	}
	if _, err := os.Stat(m.spillDir); err == nil {
		now := time.Now()
		_ = os.Chtimes(m.spillDir, now, now)
	}
}

// worker claims jobs off the pending queue until Close. Jobs canceled
// while queued are removed from pending by Cancel itself, so they never
// hold a queue slot against the QueueDepth bound.
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		for !m.closed && len(m.pending) == 0 {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending[0] = nil
		m.pending = m.pending[1:]
		// The Add happens under m.mu, before the closed flag could have
		// been observed set — so Close's Wait never races an Add.
		m.runWG.Add(1)
		m.mu.Unlock()
		m.runJob(j)
		m.runWG.Done()
	}
}

// runJob drives one job through its chunks (from its resume offset, for a
// recovered job), honoring cancellation between chunks and recording the
// terminal state exactly once — in memory and, for transitions a restart
// must know about, in the store.
func (m *Manager) runJob(j *Job) {
	now := time.Now()
	j.mu.Lock()
	if !j.state.CompareAndSwap(int32(Queued), int32(Running)) {
		j.mu.Unlock()
		return // canceled while queued; Cancel already finalized it
	}
	// The claim and its timestamp commit under one j.mu hold, so Info can
	// never observe state "running" without startedAt (same for the
	// terminal transitions below).
	j.started = &now
	j.mu.Unlock()
	m.append(&jobstore.Event{Type: jobstore.Started, Job: j.id})
	for lo := j.resume; lo < j.total; lo += j.chunk {
		reqCancel := j.cancelReq.Load()
		shutdown := false
		select {
		case <-m.stop:
			shutdown = true
		default:
		}
		if reqCancel || shutdown {
			// A user cancel is a terminal verdict and persists; a shutdown
			// is not — the job must replay as interrupted so a restarted
			// manager finishes it.
			j.finish(Canceled, "", reqCancel)
			m.canceled.Add(1)
			return
		}
		hi := lo + j.chunk
		if hi > j.total {
			hi = j.total
		}
		lines, err := j.run(lo, hi)
		var rb int64
		if err == nil {
			rb, err = j.appendResults(lines)
		}
		if err != nil {
			j.finish(Failed, err.Error(), true)
			m.failed.Add(1)
			return
		}
		done := j.doneDocs.Add(int64(hi - lo))
		// Results first, then the progress record: recovery trusts a
		// progress record only as far as the bytes already on disk, so this
		// ordering is what makes resume truncation safe.
		m.append(&jobstore.Event{
			Type:        jobstore.Progress,
			Job:         j.id,
			Done:        int(done),
			ResultBytes: rb,
		})
	}
	// A cancellation that lands during the final chunk would otherwise be
	// acknowledged yet end "done"; this narrows that window — a Cancel
	// racing the line below can still lose, which the API documents.
	if j.cancelReq.Load() {
		j.finish(Canceled, "", true)
		m.canceled.Add(1)
		return
	}
	j.finish(Done, "", true)
	m.completed.Add(1)
}

// Stats is a snapshot of the manager's gauges and lifetime counters —
// surfaced as the "jobs" block of GET /stats.
type Stats struct {
	// Gauges over the currently retained job table.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retained int `json:"retained"`
	// Lifetime counters. Recovered counts jobs replayed from the store by
	// a restarted manager.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	Reaped    int64 `json:"reaped"`
	Recovered int64 `json:"recovered"`
	// Configuration echoes, so dashboards can plot queue pressure against
	// its bound. Durable reports whether job state survives a restart.
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queueDepth"`
	Durable    bool `json:"durable"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	s := Stats{
		Submitted:  m.submitted.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Canceled:   m.canceled.Load(),
		Rejected:   m.rejected.Load(),
		Reaped:     m.reaped.Load(),
		Recovered:  m.recovered.Load(),
		Workers:    m.cfg.Workers,
		QueueDepth: m.cfg.QueueDepth,
		Durable:    m.durable,
	}
	m.mu.Lock()
	s.Retained = len(m.jobs)
	for _, j := range m.jobs {
		switch State(j.state.Load()) {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		}
	}
	m.mu.Unlock()
	return s
}

// Job is one submitted batch: identity, lifecycle state, progress
// counters and the retained results. All methods are safe for concurrent
// use.
type Job struct {
	m     *Manager
	id    string
	kind  string
	total int
	chunk int
	run   Runner
	// resume is the input offset execution starts from — non-zero only for
	// a recovered job resuming past its durable chunks.
	resume    int
	recovered bool

	state     atomic.Int32 // State
	cancelReq atomic.Bool
	doneDocs  atomic.Int64
	created   time.Time
	done      chan struct{} // closed exactly once, on reaching a terminal state

	mu          sync.Mutex
	started     *time.Time
	finished    *time.Time
	errMsg      string
	lines       [][]byte // buffered encoded NDJSON result lines
	resultBytes int64
	spillPath   string
	spill       *os.File // append handle while spilled; nil otherwise
	// receiptRoot/receiptData carry the job's verdict receipt when the
	// submitter attached one: the root record (persisted in the terminal
	// event, so it survives restarts) and the full receipt document with
	// per-document proofs (in-memory only; recomputable, never persisted).
	receiptRoot string
	receiptData []byte
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Recovered reports whether this job was replayed from the store by a
// restarted manager rather than submitted to this process.
func (j *Job) Recovered() bool { return j.recovered }

// Done returns a channel closed when the job reaches a terminal state —
// the no-polling alternative to watching Info.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation: immediate for a queued job, at the next
// chunk boundary for a running one, a no-op (false) for a finished one.
func (j *Job) Cancel() bool {
	j.cancelReq.Store(true)
	if j.cancelQueued(true) {
		// The job never ran; free its queue slot so canceled-while-queued
		// jobs don't count against QueueDepth. (If a worker claimed it
		// first, it is already out of pending and the worker's own
		// queued→running CAS won instead.)
		j.m.removePending(j)
		j.m.canceled.Add(1)
		return true
	}
	return State(j.state.Load()) == Running
}

// cancelQueued finalizes a still-queued job as Canceled — the CAS
// arbitrates against a worker's queued→running claim. persist records the
// cancellation in the store (true for a user cancel, false for a shutdown,
// where the job must replay as interrupted). Reports whether this call won
// the job.
func (j *Job) cancelQueued(persist bool) bool {
	now := time.Now()
	j.mu.Lock()
	if !j.state.CompareAndSwap(int32(Queued), int32(Canceled)) {
		j.mu.Unlock()
		return false
	}
	j.finished = &now
	j.run = nil
	done := j.doneDocs.Load()
	rb := j.resultBytes
	j.mu.Unlock()
	close(j.done)
	if persist {
		j.m.append(&jobstore.Event{
			Type:        jobstore.Finished,
			Job:         j.id,
			Done:        int(done),
			ResultBytes: rb,
			State:       Canceled.String(),
		})
	}
	return true
}

// removePending drops j from the pending queue, if it is still there.
func (m *Manager) removePending(j *Job) {
	m.mu.Lock()
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
}

// finish moves a running job to its terminal state: state, finish time
// and error commit under one j.mu hold (Info can never see a terminal
// state without finishedAt), the spill append handle closes, the Runner
// closure is released (it pins the submitted inputs — for the engine, the
// whole docs slice — which must not stay live for the retention TTL), and
// Done is signaled. persist appends the terminal record to the store;
// shutdown-interrupted jobs pass false so a durable log replays them as
// interrupted instead of canceled.
func (j *Job) finish(s State, errMsg string, persist bool) {
	now := time.Now()
	j.mu.Lock()
	j.state.Store(int32(s))
	j.finished = &now
	j.errMsg = errMsg
	j.run = nil
	if j.spill != nil {
		_ = j.spill.Close()
		j.spill = nil
	}
	done := j.doneDocs.Load()
	rb := j.resultBytes
	root := j.receiptRoot
	j.mu.Unlock()
	close(j.done)
	if persist {
		j.m.append(&jobstore.Event{
			Type:        jobstore.Finished,
			Job:         j.id,
			Done:        int(done),
			ResultBytes: rb,
			State:       s.String(),
			Error:       errMsg,
			Root:        root,
		})
	}
}

// SetReceipt attaches the job's verdict receipt: the root record and the
// encoded receipt document (root + per-document inclusion proofs). Called
// by the submitter's runner when the last chunk completes. The root rides
// the terminal store record; when the receipt arrives after the job
// already finalized (the runner can outrun the Submit return), a
// supplementary terminal record re-persists the state with the root so a
// restart still recovers it.
func (j *Job) SetReceipt(root string, data []byte) {
	j.mu.Lock()
	j.receiptRoot = root
	j.receiptData = data
	finished := j.finished != nil
	st := State(j.state.Load())
	done := j.doneDocs.Load()
	rb := j.resultBytes
	errMsg := j.errMsg
	j.mu.Unlock()
	if finished && st.Finished() {
		j.m.append(&jobstore.Event{
			Type:        jobstore.Finished,
			Job:         j.id,
			Done:        int(done),
			ResultBytes: rb,
			State:       st.String(),
			Error:       errMsg,
			Root:        root,
		})
	}
}

// Receipt returns the job's verdict receipt: the root record and the full
// encoded receipt document. A job recovered from the store after a
// restart keeps its root (persisted in the terminal record) but not the
// proof document; data is then nil. Both are empty for jobs submitted
// without receipts.
func (j *Job) Receipt() (root string, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.receiptRoot, j.receiptData
}

// finishedAt returns the finish time when the job is terminal.
func (j *Job) finishedAt() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished == nil {
		return time.Time{}, false
	}
	return *j.finished, true
}

// appendResults retains one chunk's encoded lines and returns the total
// retained bytes. Jobs on a durable store write through to their results
// file as produced (so a restart can re-serve or resume them); volatile
// jobs buffer in memory up to the configured cap, then (with a spill
// directory) spill to a per-job NDJSON file.
func (j *Job) appendResults(lines [][]byte) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.spill == nil {
		writeThrough := j.m.durable && j.m.resultsDir != ""
		overflow := j.spillPath == "" && j.m.spillDir != "" &&
			len(j.lines)+len(lines) > j.m.cfg.BufferedResults
		if writeThrough || overflow {
			if err := j.openSpillLocked(); err != nil {
				return j.resultBytes, err
			}
		}
	}
	if j.spill != nil {
		for _, ln := range lines {
			if _, err := j.spill.Write(ln); err != nil {
				return j.resultBytes, fmt.Errorf("jobs: writing spill file: %w", err)
			}
			if _, err := j.spill.Write(nl); err != nil {
				return j.resultBytes, fmt.Errorf("jobs: writing spill file: %w", err)
			}
			j.resultBytes += int64(len(ln)) + 1
		}
		return j.resultBytes, nil
	}
	for _, ln := range lines {
		j.lines = append(j.lines, ln)
		j.resultBytes += int64(len(ln)) + 1
	}
	return j.resultBytes, nil
}

// openSpillLocked opens the job's on-disk results file and keeps the
// handle for subsequent appends: a fresh file absorbing the buffered
// lines in the usual case, or — for a recovered job resuming past durable
// results — an append handle onto the already-truncated prefix. Called
// with j.mu held.
func (j *Job) openSpillLocked() error {
	if j.spillPath != "" {
		// Recovery validated and truncated the file; continue where the
		// durable prefix ends.
		f, err := os.OpenFile(j.spillPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("jobs: reopening results file: %w", err)
		}
		j.spill = f
		return nil
	}
	dir := j.m.spillDir
	if j.m.durable {
		dir = j.m.resultsDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: creating spill dir: %w", err)
	}
	path := filepath.Join(dir, j.id+".ndjson")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: creating spill file: %w", err)
	}
	for _, ln := range j.lines {
		_, err := f.Write(ln)
		if err == nil {
			_, err = f.Write(nl)
		}
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return fmt.Errorf("jobs: writing spill file: %w", err)
		}
	}
	j.lines = nil
	j.spillPath = path
	j.spill = f
	return nil
}

// WriteResults streams the job's retained results — one NDJSON line per
// processed input, in input order — into w, returning the bytes written.
// For a job that is still running, the stream is the prefix accumulated so
// far; poll until the state is terminal for the complete set.
func (j *Job) WriteResults(w io.Writer) (int64, error) {
	// Snapshot under j.mu, then write with the lock released: w may be a
	// slow client connection, and holding the lock across the copy would
	// stall the job's appends and every Info poll.
	j.mu.Lock()
	if j.spillPath != "" {
		f, err := os.Open(j.spillPath)
		if err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("jobs: reading spill file: %w", err)
		}
		// Bound the copy at the bytes appended so far: a concurrent append
		// can grow the file, but never past the resultBytes snapshot.
		limit := j.resultBytes
		j.mu.Unlock()
		defer f.Close()
		return io.Copy(w, io.LimitReader(f, limit))
	}
	// The lines slice is append-only while the job lives (cleanup replaces
	// the header, never the retained elements), so the snapshot stays valid.
	lines := j.lines
	j.mu.Unlock()
	var n int64
	for _, ln := range lines {
		wn, err := w.Write(ln)
		n += int64(wn)
		if err != nil {
			return n, err
		}
		wn, err = w.Write(nl)
		n += int64(wn)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// cleanup releases a removed job's retained results.
func (j *Job) cleanup() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = nil
	if j.spill != nil {
		_ = j.spill.Close()
		j.spill = nil
	}
	if j.spillPath != "" {
		_ = os.Remove(j.spillPath)
		j.spillPath = ""
	}
}

// Info is a job snapshot: the wire form of GET /jobs and GET /jobs/{id}.
type Info struct {
	// ID is the job identifier handed back by the 202 submission response.
	ID string `json:"id"`
	// Kind is the workload ("check" or "complete" for the engine's jobs).
	Kind string `json:"kind"`
	// State is the lifecycle state name.
	State string `json:"state"`
	// Total and Done are the progress counters: inputs submitted and inputs
	// processed so far.
	Total int `json:"total"`
	Done  int `json:"done"`
	// ResultBytes is the size of the retained NDJSON results; Spilled
	// reports whether they live on disk.
	ResultBytes int64 `json:"resultBytes"`
	Spilled     bool  `json:"spilled,omitempty"`
	// Recovered marks a job replayed from the durable store by a restarted
	// process rather than submitted to this one.
	Recovered bool `json:"recovered,omitempty"`
	// ReceiptRoot is the job's verdict-receipt root record, for jobs
	// submitted with receipts on. The full receipt (with per-document
	// proofs) is served separately (GET /jobs/{id}/receipt); only the root
	// survives a restart.
	ReceiptRoot string `json:"receiptRoot,omitempty"`
	// Error explains a Failed state.
	Error string `json:"error,omitempty"`
	// CreatedAt/StartedAt/FinishedAt are the lifecycle timestamps.
	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// Info snapshots the job. State, progress and timestamps are read under
// j.mu — the same hold every transition commits under — so a terminal
// state always appears together with its finish time and full progress
// count.
func (j *Job) Info() Info {
	info := Info{
		ID:        j.id,
		Kind:      j.kind,
		Total:     j.total,
		Recovered: j.recovered,
		CreatedAt: j.created,
	}
	j.mu.Lock()
	info.State = State(j.state.Load()).String()
	info.Done = int(j.doneDocs.Load())
	info.ResultBytes = j.resultBytes
	info.Spilled = j.spillPath != ""
	info.ReceiptRoot = j.receiptRoot
	info.Error = j.errMsg
	if j.started != nil {
		t := *j.started
		info.StartedAt = &t
	}
	if j.finished != nil {
		t := *j.finished
		info.FinishedAt = &t
	}
	j.mu.Unlock()
	return info
}
