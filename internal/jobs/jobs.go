// Package jobs is the async ingest layer's job-queue machinery: a bounded
// queue of submitted jobs, a worker pool that drains it, a per-job state
// machine (queued → running → done|failed|canceled), per-job progress
// counters, and result retention with an in-memory cap, optional disk
// spill, and TTL-based reaping of finished jobs.
//
// The package is deliberately engine-agnostic: a job is "total inputs plus
// a Runner that turns a contiguous chunk of them into encoded NDJSON
// lines". The engine layer supplies runners that close over CheckBatch or
// CompleteBatch; tests supply runners that block, fail, or count. Chunked
// execution is what makes progress reporting and cancel-while-running
// possible without teaching the batch workers about jobs: the manager
// checks for cancellation between chunks, so a canceled job stops within
// one chunk's worth of work and keeps the results it already produced.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// State is one point in the job lifecycle. The machine is
// queued → running → done|failed|canceled, with one shortcut: a job
// canceled while still queued goes straight to canceled without running.
type State int32

// The job lifecycle states.
const (
	// Queued: accepted, waiting for a job worker.
	Queued State = iota
	// Running: a worker is draining the job's chunks.
	Running
	// Done: every input processed; results complete.
	Done
	// Failed: a chunk returned an error; results up to that chunk are kept.
	Failed
	// Canceled: canceled before or during execution; partial results kept.
	Canceled
)

// String names the state for wire and log use.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s == Done || s == Failed || s == Canceled }

// Runner produces the results for one contiguous chunk [lo, hi) of a job's
// inputs: one encoded NDJSON line per input, in input order. A non-nil
// error fails the whole job (results of earlier chunks are retained).
type Runner func(lo, hi int) ([][]byte, error)

// ErrQueueFull rejects a submission when the job queue is at capacity —
// the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("jobs: queue is full")

// ErrClosed rejects a submission after the manager has been closed.
var ErrClosed = errors.New("jobs: manager is closed")

// Defaults for Config zero values.
const (
	// DefaultWorkers is the default number of concurrent jobs.
	DefaultWorkers = 2
	// DefaultQueueDepth is the default bound on jobs accepted but not yet
	// running.
	DefaultQueueDepth = 64
	// DefaultResultTTL is how long a finished job and its results are
	// retained by default.
	DefaultResultTTL = 15 * time.Minute
	// DefaultChunk is the default number of inputs per Runner call — the
	// granularity of progress updates and cancellation.
	DefaultChunk = 64
	// DefaultBufferedResults is the default per-job count of encoded result
	// lines held in memory before spilling to disk (when a spill directory
	// is configured).
	DefaultBufferedResults = 4096
)

// Config parameterizes a Manager. The zero value selects the defaults
// above with no disk spill.
type Config struct {
	// Workers bounds how many jobs execute concurrently; <=0 selects
	// DefaultWorkers. Each job's chunks still run through whatever
	// concurrency its Runner provides (for the engine: the engine-wide
	// worker semaphore), so this bounds job-level parallelism, not CPU use.
	Workers int
	// QueueDepth bounds jobs accepted but not yet claimed by a worker; a
	// full queue makes Submit fail with ErrQueueFull. <=0 selects
	// DefaultQueueDepth.
	QueueDepth int
	// ResultTTL is how long a finished job (and its buffered results) is
	// retained before the reaper removes it; <=0 selects DefaultResultTTL.
	ResultTTL time.Duration
	// Chunk is the number of inputs per Runner call; <=0 selects
	// DefaultChunk.
	Chunk int
	// BufferedResults caps the encoded result lines a job holds in memory;
	// past the cap, results spill to a file under SpillDir. <=0 selects
	// DefaultBufferedResults. Without a SpillDir the buffer simply keeps
	// growing (bounded by the submitted batch size).
	BufferedResults int
	// SpillDir, when non-empty, is the spill root: each manager writes one
	// NDJSON file per overflowing job under SpillDir/<pid> (created lazily,
	// removed at reap/delete). The per-pid namespace lets processes share a
	// root (instances sharing a cache directory) without the startup sweep
	// of a new process destroying a live sibling's files.
	SpillDir string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = DefaultWorkers
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = DefaultQueueDepth
	}
	if out.ResultTTL <= 0 {
		out.ResultTTL = DefaultResultTTL
	}
	if out.Chunk <= 0 {
		out.Chunk = DefaultChunk
	}
	if out.BufferedResults <= 0 {
		out.BufferedResults = DefaultBufferedResults
	}
	return out
}

// Manager owns the job table, the bounded queue and the worker pool.
// Workers and the reaper start lazily on the first Submit, so constructing
// a Manager (every engine carries one) costs nothing until async ingest is
// actually used. All methods are safe for concurrent use.
type Manager struct {
	cfg Config
	// spillDir is this process's namespace under cfg.SpillDir ("" when
	// spilling is disabled).
	spillDir string

	mu      sync.Mutex
	cond    *sync.Cond // signals workers: pending grew, or closed
	jobs    map[string]*Job
	pending []*Job // submitted, not yet claimed by a worker; bounded by QueueDepth
	closed  bool

	start sync.Once
	stop  chan struct{}

	// Lifetime counters (gauges are derived from the job table).
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	reaped    atomic.Int64
}

// NewManager builds a manager; workers start on first use.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:  cfg,
		jobs: map[string]*Job{},
		stop: make(chan struct{}),
	}
	if cfg.SpillDir != "" {
		m.spillDir = filepath.Join(cfg.SpillDir, strconv.Itoa(os.Getpid()))
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Close stops the worker pool and the reaper. Queued jobs are finalized
// as Canceled (their Done channels close — no waiter is left hanging);
// running jobs finish their current chunk and then observe the shutdown
// as a cancellation. Submissions after Close fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	// The closed flag (flipped exactly once, above) makes Close idempotent
	// without ever starting a pool that no Submit asked for.
	close(m.stop)
	m.cond.Broadcast()
	for _, j := range pending {
		// cancelQueued loses only to a worker that claimed the job before
		// the pending queue was emptied (it will self-cancel between
		// chunks) or to a concurrent Cancel — either way the job still
		// terminates.
		if j.cancelQueued() {
			m.canceled.Add(1)
		}
	}
}

// startPool sweeps orphaned spill files, then launches the worker pool
// and the reaper (under m.start).
func (m *Manager) startPool() {
	m.sweepSpillDir()
	for i := 0; i < m.cfg.Workers; i++ {
		go m.worker()
	}
	go m.reaper()
}

// sweepSpillDir reclaims spill namespaces orphaned by dead processes:
// job state dies with its process, so the files under a dead pid's
// directory are unreachable by Reap/Remove and would otherwise accumulate
// across restarts. Only directories whose owning pid is confirmed gone
// are removed — instances sharing a spill root (a shared cache directory)
// never touch each other's live files. Runs once, at pool start.
func (m *Manager) sweepSpillDir() {
	if m.cfg.SpillDir == "" {
		return
	}
	ents, err := os.ReadDir(m.cfg.SpillDir)
	if err != nil {
		return // no dir yet (or unreadable): nothing to reclaim
	}
	self := os.Getpid()
	for _, ent := range ents {
		pid, err := strconv.Atoi(ent.Name())
		if err != nil || !ent.IsDir() || pid == self {
			continue
		}
		if pidDead(pid) {
			_ = os.RemoveAll(filepath.Join(m.cfg.SpillDir, ent.Name()))
		}
	}
}

// pidDead reports whether no process with the given pid exists anymore.
// False negatives (a recycled pid) only postpone reclamation.
func pidDead(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return true
	}
	return errors.Is(p.Signal(syscall.Signal(0)), os.ErrProcessDone)
}

// newID draws a 128-bit random hex job id.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues a job over total inputs executed by run, in chunks. It
// fails with ErrQueueFull when the queue is at capacity and ErrClosed
// after Close; otherwise the job is Queued and will be claimed by a
// worker. A zero-input job completes without ever invoking run.
func (m *Manager) Submit(kind string, total int, run Runner) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()
	m.start.Do(m.startPool)
	j := &Job{
		m:       m,
		id:      newID(),
		kind:    kind,
		total:   total,
		run:     run,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	j.state.Store(int32(Queued))
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.cond.Signal()
	m.submitted.Add(1)
	return j, nil
}

// Get returns the job with the given id, if it is still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every retained job, newest submission first.
func (m *Manager) List() []Info {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Info, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.After(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel requests cancellation of the job with the given id. A queued job
// becomes Canceled immediately and never runs; a running job stops at its
// next chunk boundary, keeping the results produced so far; a finished job
// is left untouched (Cancel then reports false). The boolean is whether a
// cancellation was actually delivered; unknown ids return ErrNotFound.
func (m *Manager) Cancel(id string) (bool, error) {
	j, ok := m.Get(id)
	if !ok {
		return false, ErrNotFound
	}
	return j.Cancel(), nil
}

// Remove drops a finished job from the table right now (freeing its
// buffered results and spill file) — the DELETE-a-finished-job semantics.
// Active jobs are not removable; cancel them first. It reports whether the
// job was removed.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || !State(j.state.Load()).Finished() {
		m.mu.Unlock()
		return false
	}
	delete(m.jobs, id)
	m.mu.Unlock()
	j.cleanup()
	m.reaped.Add(1)
	return true
}

// ErrNotFound reports an unknown (or already reaped) job id — the HTTP
// layer maps it to 404.
var ErrNotFound = errors.New("jobs: no such job")

// nl terminates one NDJSON line.
var nl = []byte{'\n'}

// Reap sweeps finished jobs whose retention TTL has expired, returning how
// many were removed. The background reaper calls it periodically; tests
// (and operators wanting immediate reclamation) may call it directly.
func (m *Manager) Reap() int {
	cutoff := time.Now().Add(-m.cfg.ResultTTL)
	var expired []*Job
	m.mu.Lock()
	for id, j := range m.jobs {
		if fin, ok := j.finishedAt(); ok && fin.Before(cutoff) {
			delete(m.jobs, id)
			expired = append(expired, j)
		}
	}
	m.mu.Unlock()
	for _, j := range expired {
		j.cleanup()
	}
	m.reaped.Add(int64(len(expired)))
	return len(expired)
}

// reaper periodically sweeps expired jobs until Close.
func (m *Manager) reaper() {
	period := m.cfg.ResultTTL / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Reap()
		}
	}
}

// worker claims jobs off the pending queue until Close. Jobs canceled
// while queued are removed from pending by Cancel itself, so they never
// hold a queue slot against the QueueDepth bound.
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		for !m.closed && len(m.pending) == 0 {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending[0] = nil
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.runJob(j)
	}
}

// runJob drives one job through its chunks, honoring cancellation between
// chunks and recording the terminal state exactly once.
func (m *Manager) runJob(j *Job) {
	now := time.Now()
	j.mu.Lock()
	if !j.state.CompareAndSwap(int32(Queued), int32(Running)) {
		j.mu.Unlock()
		return // canceled while queued; Cancel already finalized it
	}
	// The claim and its timestamp commit under one j.mu hold, so Info can
	// never observe state "running" without startedAt (same for the
	// terminal transitions below).
	j.started = &now
	j.mu.Unlock()
	for lo := 0; lo < j.total; lo += m.cfg.Chunk {
		canceled := j.cancelReq.Load()
		select {
		case <-m.stop:
			canceled = true
		default:
		}
		if canceled {
			j.finish(Canceled, "")
			m.canceled.Add(1)
			return
		}
		hi := lo + m.cfg.Chunk
		if hi > j.total {
			hi = j.total
		}
		lines, err := j.run(lo, hi)
		if err == nil {
			err = j.appendResults(lines)
		}
		if err != nil {
			j.finish(Failed, err.Error())
			m.failed.Add(1)
			return
		}
		j.doneDocs.Add(int64(hi - lo))
	}
	// A cancellation that lands during the final chunk would otherwise be
	// acknowledged yet end "done"; this narrows that window — a Cancel
	// racing the line below can still lose, which the API documents.
	if j.cancelReq.Load() {
		j.finish(Canceled, "")
		m.canceled.Add(1)
		return
	}
	j.finish(Done, "")
	m.completed.Add(1)
}

// Stats is a snapshot of the manager's gauges and lifetime counters —
// surfaced as the "jobs" block of GET /stats.
type Stats struct {
	// Gauges over the currently retained job table.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retained int `json:"retained"`
	// Lifetime counters.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	Reaped    int64 `json:"reaped"`
	// Configuration echoes, so dashboards can plot queue pressure against
	// its bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queueDepth"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	s := Stats{
		Submitted:  m.submitted.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Canceled:   m.canceled.Load(),
		Rejected:   m.rejected.Load(),
		Reaped:     m.reaped.Load(),
		Workers:    m.cfg.Workers,
		QueueDepth: m.cfg.QueueDepth,
	}
	m.mu.Lock()
	s.Retained = len(m.jobs)
	for _, j := range m.jobs {
		switch State(j.state.Load()) {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		}
	}
	m.mu.Unlock()
	return s
}

// Job is one submitted batch: identity, lifecycle state, progress
// counters and the retained results. All methods are safe for concurrent
// use.
type Job struct {
	m     *Manager
	id    string
	kind  string
	total int
	run   Runner

	state     atomic.Int32 // State
	cancelReq atomic.Bool
	doneDocs  atomic.Int64
	created   time.Time
	done      chan struct{} // closed exactly once, on reaching a terminal state

	mu          sync.Mutex
	started     *time.Time
	finished    *time.Time
	errMsg      string
	lines       [][]byte // buffered encoded NDJSON result lines
	resultBytes int64
	spillPath   string
	spill       *os.File // append handle while spilled; nil otherwise
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job reaches a terminal state —
// the no-polling alternative to watching Info.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation: immediate for a queued job, at the next
// chunk boundary for a running one, a no-op (false) for a finished one.
func (j *Job) Cancel() bool {
	j.cancelReq.Store(true)
	if j.cancelQueued() {
		// The job never ran; free its queue slot so canceled-while-queued
		// jobs don't count against QueueDepth. (If a worker claimed it
		// first, it is already out of pending and the worker's own
		// queued→running CAS won instead.)
		j.m.removePending(j)
		j.m.canceled.Add(1)
		return true
	}
	return State(j.state.Load()) == Running
}

// cancelQueued finalizes a still-queued job as Canceled — the CAS
// arbitrates against a worker's queued→running claim. Reports whether
// this call won the job.
func (j *Job) cancelQueued() bool {
	now := time.Now()
	j.mu.Lock()
	if !j.state.CompareAndSwap(int32(Queued), int32(Canceled)) {
		j.mu.Unlock()
		return false
	}
	j.finished = &now
	j.run = nil
	j.mu.Unlock()
	close(j.done)
	return true
}

// removePending drops j from the pending queue, if it is still there.
func (m *Manager) removePending(j *Job) {
	m.mu.Lock()
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
}

// finish moves a running job to its terminal state: state, finish time
// and error commit under one j.mu hold (Info can never see a terminal
// state without finishedAt), the spill append handle closes, the Runner
// closure is released (it pins the submitted inputs — for the engine, the
// whole docs slice — which must not stay live for the retention TTL), and
// Done is signaled.
func (j *Job) finish(s State, errMsg string) {
	now := time.Now()
	j.mu.Lock()
	j.state.Store(int32(s))
	j.finished = &now
	j.errMsg = errMsg
	j.run = nil
	if j.spill != nil {
		_ = j.spill.Close()
		j.spill = nil
	}
	j.mu.Unlock()
	close(j.done)
}

// finishedAt returns the finish time when the job is terminal.
func (j *Job) finishedAt() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished == nil {
		return time.Time{}, false
	}
	return *j.finished, true
}

// appendResults retains one chunk's encoded lines: in memory up to the
// configured buffer, then (with a spill directory) in a per-job NDJSON
// file on disk.
func (j *Job) appendResults(lines [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.spill == nil && j.spillPath == "" &&
		len(j.lines)+len(lines) > j.m.cfg.BufferedResults && j.m.cfg.SpillDir != "" {
		if err := j.openSpillLocked(); err != nil {
			return err
		}
	}
	if j.spill != nil {
		for _, ln := range lines {
			if _, err := j.spill.Write(ln); err != nil {
				return fmt.Errorf("jobs: writing spill file: %w", err)
			}
			if _, err := j.spill.Write(nl); err != nil {
				return fmt.Errorf("jobs: writing spill file: %w", err)
			}
			j.resultBytes += int64(len(ln)) + 1
		}
		return nil
	}
	for _, ln := range lines {
		j.lines = append(j.lines, ln)
		j.resultBytes += int64(len(ln)) + 1
	}
	return nil
}

// openSpillLocked moves the buffered lines to a fresh spill file and keeps
// the handle open for subsequent appends. Called with j.mu held.
func (j *Job) openSpillLocked() error {
	if err := os.MkdirAll(j.m.spillDir, 0o755); err != nil {
		return fmt.Errorf("jobs: creating spill dir: %w", err)
	}
	path := filepath.Join(j.m.spillDir, j.id+".ndjson")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: creating spill file: %w", err)
	}
	for _, ln := range j.lines {
		_, err := f.Write(ln)
		if err == nil {
			_, err = f.Write(nl)
		}
		if err != nil {
			_ = f.Close()
			_ = os.Remove(path)
			return fmt.Errorf("jobs: writing spill file: %w", err)
		}
	}
	j.lines = nil
	j.spillPath = path
	j.spill = f
	return nil
}

// WriteResults streams the job's retained results — one NDJSON line per
// processed input, in input order — into w, returning the bytes written.
// For a job that is still running, the stream is the prefix accumulated so
// far; poll until the state is terminal for the complete set.
func (j *Job) WriteResults(w io.Writer) (int64, error) {
	// Snapshot under j.mu, then write with the lock released: w may be a
	// slow client connection, and holding the lock across the copy would
	// stall the job's appends and every Info poll.
	j.mu.Lock()
	if j.spillPath != "" {
		f, err := os.Open(j.spillPath)
		if err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("jobs: reading spill file: %w", err)
		}
		// Bound the copy at the bytes appended so far: a concurrent append
		// can grow the file, but never past the resultBytes snapshot.
		limit := j.resultBytes
		j.mu.Unlock()
		defer f.Close()
		return io.Copy(w, io.LimitReader(f, limit))
	}
	// The lines slice is append-only while the job lives (cleanup replaces
	// the header, never the retained elements), so the snapshot stays valid.
	lines := j.lines
	j.mu.Unlock()
	var n int64
	for _, ln := range lines {
		wn, err := w.Write(ln)
		n += int64(wn)
		if err != nil {
			return n, err
		}
		wn, err = w.Write(nl)
		n += int64(wn)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// cleanup releases a removed job's retained results.
func (j *Job) cleanup() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = nil
	if j.spill != nil {
		_ = j.spill.Close()
		j.spill = nil
	}
	if j.spillPath != "" {
		_ = os.Remove(j.spillPath)
		j.spillPath = ""
	}
}

// Info is a job snapshot: the wire form of GET /jobs and GET /jobs/{id}.
type Info struct {
	// ID is the job identifier handed back by the 202 submission response.
	ID string `json:"id"`
	// Kind is the workload ("check" or "complete" for the engine's jobs).
	Kind string `json:"kind"`
	// State is the lifecycle state name.
	State string `json:"state"`
	// Total and Done are the progress counters: inputs submitted and inputs
	// processed so far.
	Total int `json:"total"`
	Done  int `json:"done"`
	// ResultBytes is the size of the retained NDJSON results; Spilled
	// reports whether they live on disk.
	ResultBytes int64 `json:"resultBytes"`
	Spilled     bool  `json:"spilled,omitempty"`
	// Error explains a Failed state.
	Error string `json:"error,omitempty"`
	// CreatedAt/StartedAt/FinishedAt are the lifecycle timestamps.
	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// Info snapshots the job. State, progress and timestamps are read under
// j.mu — the same hold every transition commits under — so a terminal
// state always appears together with its finish time and full progress
// count.
func (j *Job) Info() Info {
	info := Info{
		ID:        j.id,
		Kind:      j.kind,
		Total:     j.total,
		CreatedAt: j.created,
	}
	j.mu.Lock()
	info.State = State(j.state.Load()).String()
	info.Done = int(j.doneDocs.Load())
	info.ResultBytes = j.resultBytes
	info.Spilled = j.spillPath != ""
	info.Error = j.errMsg
	if j.started != nil {
		t := *j.started
		info.StartedAt = &t
	}
	if j.finished != nil {
		t := *j.finished
		info.FinishedAt = &t
	}
	j.mu.Unlock()
	return info
}
