// Package jobstore defines the persistence contract of the async job
// layer: an append-only log of job-lifecycle events (submission, start,
// per-chunk progress, terminal state, removal) behind a small Store
// interface. The jobs manager appends one event per transition and, on a
// fresh process, replays the log to rebuild its job table — re-queueing
// interrupted jobs and re-serving finished ones — so queued and running
// state no longer dies with the process.
//
// The interface is deliberately backend-shaped rather than file-shaped:
// the two in-tree implementations are a local-disk write-ahead log
// (internal/jobs/walstore) and an in-memory store preserving the
// zero-config behavior (internal/jobs/memstore), and the same event
// vocabulary maps onto a Postgres table or an object-store log without
// changing the manager.
package jobstore

import "time"

// EventType names one kind of job-lifecycle event.
type EventType string

// The event vocabulary. One Submitted event opens a job's history; zero
// or more Started/Progress events follow; at most one Finished event
// closes it; a Removed event retires the history entirely (reap or
// explicit DELETE), letting log backends compact it away.
const (
	// Submitted records a job's acceptance: identity, workload kind, input
	// count, chunking config and the opaque payload the submitter needs to
	// reconstruct the job's Runner after a restart. It is the write-ahead
	// record — appended (and made durable by durable backends) before the
	// job is queued.
	Submitted EventType = "submitted"
	// Started records a worker claiming the job.
	Started EventType = "started"
	// Progress records one completed chunk: inputs processed so far and
	// the byte size of the results retained so far. A restarted manager
	// resumes from the newest Progress record.
	Progress EventType = "progress"
	// Finished records the terminal state (done/failed/canceled), the
	// final progress counters and the error message of a failed job.
	Finished EventType = "finished"
	// Removed retires the job's whole history: its record no longer
	// replays, and log backends may compact the underlying storage.
	Removed EventType = "removed"
)

// Event is one append-only record of a job's lifecycle. Fields beyond
// Type/Job/Time are populated per type (see the EventType docs); zero
// values are omitted on the wire.
type Event struct {
	// Type discriminates the record.
	Type EventType `json:"type"`
	// Job is the job id the record belongs to.
	Job string `json:"job"`
	// Time is when the transition happened.
	Time time.Time `json:"time"`

	// Kind, Total and Chunk describe the submission (Submitted only):
	// workload kind, input count, and the chunk size the job was submitted
	// with (replay re-runs with the same chunking even if the manager's
	// default changed).
	Kind  string `json:"kind,omitempty"`
	Total int    `json:"total,omitempty"`
	Chunk int    `json:"chunk,omitempty"`
	// Payload is the submitter-owned blob from which a job's Runner can be
	// reconstructed after a restart (for the engine: the serialized
	// documents plus schema references). Backends store it out of band —
	// it never travels inside log records — which is why the JSON tag
	// excludes it.
	Payload []byte `json:"-"`

	// Done and ResultBytes are the progress counters (Progress and
	// Finished): inputs processed and result bytes retained so far.
	Done        int   `json:"done,omitempty"`
	ResultBytes int64 `json:"resultBytes,omitempty"`

	// State is the terminal state name (Finished only): "done", "failed"
	// or "canceled".
	State string `json:"state,omitempty"`
	// Error explains a failed job (Finished only).
	Error string `json:"error,omitempty"`
	// Root is the job's verdict-receipt root record (Finished only, and
	// only for jobs submitted with receipts on). The root — a commitment
	// to every verdict the job produced — survives restarts through this
	// field; the per-document proofs are recomputable from the inputs and
	// are not persisted.
	Root string `json:"root,omitempty"`
}

// Store is an append-only event log with replay. Implementations must be
// safe for concurrent Append calls; Replay and Close are called without
// concurrent Appends (replay happens before the manager starts accepting
// submissions, Close after it stops).
type Store interface {
	// Append records one event. For durable stores, a Submitted event must
	// be durable (synced) when Append returns — it is the write-ahead
	// guarantee the job layer's restart story rests on. An Append error on
	// submission fails the submission; errors on later transitions are
	// best-effort (the manager proceeds in memory).
	Append(ev *Event) error
	// Replay invokes fn for every retained event, in append order,
	// skipping jobs whose history was Removed. A non-nil error from fn
	// aborts the replay and is returned.
	Replay(fn func(ev *Event) error) error
	// Durable reports whether the store survives the process (and
	// therefore whether submitters should build recovery payloads and the
	// manager should persist results for re-serving after a restart).
	Durable() bool
	// Close releases the store. Appends after Close fail.
	Close() error
}
