package memstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/jobs/jobstore"
)

func TestRoundtripAndRemoval(t *testing.T) {
	s := New()
	if s.Durable() {
		t.Fatal("memstore must report volatile")
	}
	events := []jobstore.Event{
		{Type: jobstore.Submitted, Job: "a", Kind: "check", Total: 3},
		{Type: jobstore.Started, Job: "a"},
		{Type: jobstore.Submitted, Job: "b", Kind: "check", Total: 1},
		{Type: jobstore.Finished, Job: "a", Done: 3, State: "done"},
	}
	for i := range events {
		if err := s.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	var got []jobstore.Event
	collect := func(ev *jobstore.Event) error { got = append(got, *ev); return nil }
	if err := s.Replay(collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Job != "a" || got[2].Job != "b" || got[3].State != "done" {
		t.Fatalf("replay = %+v", got)
	}
	// Removal retires a's whole history.
	if err := s.Append(&jobstore.Event{Type: jobstore.Removed, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	got = nil
	if err := s.Replay(collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Job != "b" {
		t.Fatalf("replay after removal = %+v", got)
	}
}

func TestCompactionBoundsRetention(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: id}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(&jobstore.Event{Type: jobstore.Finished, Job: id, State: "done"}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(&jobstore.Event{Type: jobstore.Removed, Job: id}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	retained := len(s.events)
	s.mu.Unlock()
	if retained != 0 {
		t.Fatalf("fully-removed log retains %d events", retained)
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				_ = s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: id})
				_ = s.Append(&jobstore.Event{Type: jobstore.Finished, Job: id, State: "done"})
			}
		}(g)
	}
	wg.Wait()
	n := 0
	if err := s.Replay(func(ev *jobstore.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 8*50*2 {
		t.Fatalf("replayed %d events, want %d", n, 8*50*2)
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := New()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&jobstore.Event{Type: jobstore.Submitted, Job: "a"}); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}
