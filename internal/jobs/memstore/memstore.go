// Package memstore is the in-memory jobstore.Store: an event log that
// lives and dies with the process. It preserves the job layer's
// zero-config behavior — no disk, no fsync, nothing to clean up — while
// exercising exactly the same append/replay contract as the durable
// backends, so replay logic can be tested without touching a filesystem.
package memstore

import (
	"errors"
	"sync"

	"repro/internal/jobs/jobstore"
)

// Store is an in-memory append-only event log. The zero value is not
// usable; construct with New.
type Store struct {
	mu      sync.Mutex
	events  []jobstore.Event
	live    map[string]bool // job id -> history not yet Removed
	removed int             // events belonging to removed jobs (compaction trigger)
	closed  bool
}

// ErrClosed rejects appends after Close.
var ErrClosed = errors.New("memstore: store is closed")

// New builds an empty in-memory store.
func New() *Store {
	return &Store{live: map[string]bool{}}
}

// Append records one event. Payloads are referenced, not copied — the
// manager never mutates a submitted payload.
func (s *Store) Append(ev *jobstore.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	switch ev.Type {
	case jobstore.Submitted:
		s.live[ev.Job] = true
	case jobstore.Removed:
		if s.live[ev.Job] {
			delete(s.live, ev.Job)
			for i := range s.events {
				if s.events[i].Job == ev.Job {
					s.removed++
				}
			}
			s.compactLocked()
		}
		return nil // removal retires the history; nothing to retain
	}
	s.events = append(s.events, *ev)
	return nil
}

// compactLocked rewrites the event slice without removed jobs' records
// once they dominate it, so a long-lived manager's reaped jobs do not
// accumulate forever. Called with s.mu held.
func (s *Store) compactLocked() {
	if s.removed*2 < len(s.events) {
		return
	}
	kept := s.events[:0]
	for _, ev := range s.events {
		if s.live[ev.Job] {
			kept = append(kept, ev)
		}
	}
	// Release the tail so dropped payload references are collectable.
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = jobstore.Event{}
	}
	s.events = kept
	s.removed = 0
}

// Replay invokes fn for every retained event of every live job, in
// append order.
func (s *Store) Replay(fn func(ev *jobstore.Event) error) error {
	s.mu.Lock()
	events := make([]jobstore.Event, 0, len(s.events))
	for _, ev := range s.events {
		if s.live[ev.Job] {
			events = append(events, ev)
		}
	}
	s.mu.Unlock()
	for i := range events {
		if err := fn(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// Durable reports false: the log dies with the process.
func (s *Store) Durable() bool { return false }

// Close marks the store closed; subsequent appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
