package jobs

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// countingRunner returns one line per input, "line-<index>".
func countingRunner(t *testing.T) Runner {
	t.Helper()
	return func(lo, hi int) ([][]byte, error) {
		lines := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			lines = append(lines, []byte(fmt.Sprintf("line-%d", i)))
		}
		return lines, nil
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID(), j.Info())
	}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 1, Chunk: 8})
	defer m.Close()
	j, err := m.Submit("check", 20, nil, countingRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	info := j.Info()
	if info.State != "done" || info.Done != 20 || info.Total != 20 {
		t.Fatalf("info = %+v", info)
	}
	if info.StartedAt == nil || info.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", info)
	}
	var buf bytes.Buffer
	if _, err := j.WriteResults(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d result lines, want 20", len(lines))
	}
	for i, ln := range lines {
		if want := fmt.Sprintf("line-%d", i); ln != want {
			t.Fatalf("line %d = %q, want %q", i, ln, want)
		}
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Retained != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroInputJobCompletes(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit("check", 0, nil, func(lo, hi int) ([][]byte, error) {
		t.Error("runner invoked for a zero-input job")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != Done {
		t.Fatalf("state = %v, want done", j.State())
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	// Job A occupies the single worker.
	a, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("a")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Job B fills the queue.
	if _, err := m.Submit("check", 1, nil, countingRunner(t)); err != nil {
		t.Fatal(err)
	}
	// Job C must be rejected.
	if _, err := m.Submit("check", 1, nil, countingRunner(t)); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(block)
	waitDone(t, a)
}

func TestCancelQueued(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	a, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("a")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, err := m.Submit("check", 5, nil, countingRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.Cancel(b.ID()); err != nil || !ok {
		t.Fatalf("Cancel = %v, %v", ok, err)
	}
	waitDone(t, b)
	if info := b.Info(); info.State != "canceled" || info.Done != 0 {
		t.Fatalf("info = %+v", info)
	}
	close(block)
	waitDone(t, a)
	if a.State() != Done {
		t.Fatalf("job a state = %v (cancel of b must not touch a)", a.State())
	}
}

func TestCancelWhileRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1, Chunk: 2})
	defer m.Close()
	firstChunk := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	j, err := m.Submit("check", 10, nil, func(lo, hi int) ([][]byte, error) {
		once.Do(func() { close(firstChunk) })
		<-release
		lines := make([][]byte, hi-lo)
		for i := range lines {
			lines[i] = []byte(fmt.Sprintf("line-%d", lo+i))
		}
		return lines, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-firstChunk
	if ok, err := m.Cancel(j.ID()); err != nil || !ok {
		t.Fatalf("Cancel = %v, %v", ok, err)
	}
	close(release)
	waitDone(t, j)
	info := j.Info()
	if info.State != "canceled" {
		t.Fatalf("state = %s, want canceled", info.State)
	}
	// The first chunk completed before cancellation took hold; its partial
	// results must be retained.
	if info.Done != 2 {
		t.Fatalf("done = %d, want 2 (one chunk)", info.Done)
	}
	var buf bytes.Buffer
	if _, err := j.WriteResults(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "line-0\nline-1\n" {
		t.Fatalf("partial results = %q", got)
	}
	if st := m.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", st.Canceled)
	}
}

func TestFailedJobKeepsEarlierChunks(t *testing.T) {
	m := NewManager(Config{Workers: 1, Chunk: 3})
	defer m.Close()
	j, err := m.Submit("check", 9, nil, func(lo, hi int) ([][]byte, error) {
		if lo >= 3 {
			return nil, fmt.Errorf("boom at %d", lo)
		}
		return countingRunner(t)(lo, hi)
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	info := j.Info()
	if info.State != "failed" || !strings.Contains(info.Error, "boom at 3") || info.Done != 3 {
		t.Fatalf("info = %+v", info)
	}
}

func TestSpillToDisk(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{Workers: 1, Chunk: 4, BufferedResults: 6, SpillDir: dir})
	defer m.Close()
	j, err := m.Submit("check", 25, nil, countingRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	info := j.Info()
	if !info.Spilled {
		t.Fatalf("job did not spill: %+v", info)
	}
	spill := filepath.Join(m.spillDir, j.ID()+".ndjson")
	if _, err := os.Stat(spill); err != nil {
		t.Fatalf("spill file: %v", err)
	}
	var buf bytes.Buffer
	n, err := j.WriteResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != info.ResultBytes {
		t.Fatalf("WriteResults wrote %d bytes, info says %d", n, info.ResultBytes)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 25 || lines[0] != "line-0" || lines[24] != "line-24" {
		t.Fatalf("spilled results wrong: %d lines, first %q, last %q", len(lines), lines[0], lines[len(lines)-1])
	}
	// Removing the finished job deletes the spill file.
	if !m.Remove(j.ID()) {
		t.Fatal("Remove returned false for a finished job")
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("spill file survived removal: %v", err)
	}
	if _, ok := m.Get(j.ID()); ok {
		t.Fatal("job still retained after Remove")
	}
}

func TestReapTTL(t *testing.T) {
	m := NewManager(Config{Workers: 1, ResultTTL: time.Millisecond})
	defer m.Close()
	j, err := m.Submit("check", 2, nil, countingRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	time.Sleep(10 * time.Millisecond)
	if n := m.Reap(); n != 1 {
		t.Fatalf("Reap() = %d, want 1", n)
	}
	if _, ok := m.Get(j.ID()); ok {
		t.Fatal("job still retained after reap")
	}
	if _, err := m.Cancel(j.ID()); err != ErrNotFound {
		t.Fatalf("Cancel after reap = %v, want ErrNotFound", err)
	}
	if st := m.Stats(); st.Reaped != 1 || st.Retained != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReapSkipsActiveJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, ResultTTL: time.Millisecond})
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	j, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("x")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	time.Sleep(5 * time.Millisecond)
	if n := m.Reap(); n != 0 {
		t.Fatalf("Reap() removed %d active jobs", n)
	}
	close(block)
	waitDone(t, j)
}

// TestCanceledQueuedJobFreesSlot pins that canceling a queued job releases
// its queue slot immediately: the QueueDepth bound counts jobs actually
// waiting, not canceled husks a busy worker has yet to drain.
func TestCanceledQueuedJobFreesSlot(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	a, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("a")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, err := m.Submit("check", 1, nil, countingRunner(t)) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("check", 1, nil, countingRunner(t)); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if ok := b.Cancel(); !ok {
		t.Fatal("Cancel of queued job returned false")
	}
	c, err := m.Submit("check", 1, nil, countingRunner(t))
	if err != nil {
		t.Fatalf("submit after canceling the queued job: %v (slot not freed)", err)
	}
	close(block)
	waitDone(t, a)
	waitDone(t, c)
	if c.State() != Done {
		t.Fatalf("job c state = %v, want done", c.State())
	}
}

// TestSweepOrphanedSpillFiles pins that a dead process's spill namespace
// is reclaimed when the pool starts, while a live process's namespace
// (here: our own pid's) survives the sweep.
func TestSweepOrphanedSpillFiles(t *testing.T) {
	dir := t.TempDir()
	// A pid that is definitely dead: run a child to completion.
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot run child process: %v", err)
	}
	deadDir := filepath.Join(dir, strconv.Itoa(cmd.Process.Pid))
	orphan := filepath.Join(deadDir, "deadbeefdeadbeefdeadbeefdeadbeef.ndjson")
	if err := os.MkdirAll(deadDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A live sibling's namespace (our own pid stands in for it).
	liveDir := filepath.Join(dir, strconv.Itoa(os.Getpid()))
	live := filepath.Join(liveDir, "cafebabecafebabecafebabecafebabe.ndjson")
	if err := os.MkdirAll(liveDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(live, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A legacy pid namespace whose pid was recycled by a live process (pid
	// 1 stands in) but whose directory has gone stale: the age fallback —
	// the fix for the pid-recycling leak — must reclaim it even though the
	// liveness probe says "alive".
	stale := time.Now().Add(-2 * time.Hour)
	recycledDir := filepath.Join(dir, "1")
	if err := os.MkdirAll(recycledDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(recycledDir, stale, stale); err != nil {
		t.Fatal(err)
	}
	// Instance namespaces: a stale one is an orphan, a fresh one is a live
	// sibling mid-heartbeat.
	staleInst := filepath.Join(dir, "i-000000000001")
	if err := os.MkdirAll(staleInst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(staleInst, stale, stale); err != nil {
		t.Fatal(err)
	}
	freshInst := filepath.Join(dir, "i-000000000002")
	if err := os.MkdirAll(freshInst, 0o755); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Workers: 1, SpillDir: dir})
	defer m.Close()
	j, err := m.Submit("check", 1, nil, countingRunner(t)) // first Submit starts the pool
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if _, err := os.Stat(deadDir); !os.IsNotExist(err) {
		t.Fatalf("dead process's spill namespace survived the sweep: %v", err)
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("live process's spill file was swept: %v", err)
	}
	if _, err := os.Stat(recycledDir); !os.IsNotExist(err) {
		t.Fatalf("stale recycled-pid namespace survived the sweep: %v", err)
	}
	if _, err := os.Stat(staleInst); !os.IsNotExist(err) {
		t.Fatalf("stale instance namespace survived the sweep: %v", err)
	}
	if _, err := os.Stat(freshInst); err != nil {
		t.Fatalf("fresh sibling instance namespace was swept: %v", err)
	}
}

// TestCloseFinalizesQueuedJobs pins that Close cancels still-queued jobs
// so their Done channels close and no waiter hangs.
func TestCloseFinalizesQueuedJobs(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	started := make(chan struct{})
	a, err := m.Submit("check", 1, nil, func(lo, hi int) ([][]byte, error) {
		close(started)
		<-block
		return [][]byte{[]byte("a")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, err := m.Submit("check", 1, nil, countingRunner(t)) // stays queued
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	waitDone(t, b)
	if b.State() != Canceled {
		t.Fatalf("queued job state after Close = %v, want canceled", b.State())
	}
	close(block)
	// The running job had a single chunk, so it completes it and ends done
	// (a multi-chunk job would observe the shutdown at its next boundary).
	waitDone(t, a)
	if !a.State().Finished() {
		t.Fatalf("running job state after Close = %v, want terminal", a.State())
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	m.Close()
	if _, err := m.Submit("check", 1, nil, countingRunner(t)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestConcurrentSubmitCancelPoll is the crash-free race check: goroutines
// submitting, canceling, polling, listing, reading results and reaping
// concurrently. Run under -race.
func TestConcurrentSubmitCancelPoll(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 256, Chunk: 4, ResultTTL: time.Minute})
	defer m.Close()
	const jobs = 40
	var wg sync.WaitGroup
	ids := make(chan string, jobs)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs/4; i++ {
				j, err := m.Submit("check", 32, nil, countingRunner(t))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- j.ID()
			}
		}()
	}
	var pollWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollWG.Add(1)
		go func(g int) {
			defer pollWG.Done()
			for id := range ids {
				if g%2 == 0 {
					m.Cancel(id)
				}
				if j, ok := m.Get(id); ok {
					_ = j.Info()
					var buf bytes.Buffer
					_, _ = j.WriteResults(&buf)
				}
				_ = m.List()
				_ = m.Stats()
				m.Reap()
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	pollWG.Wait()
	// Every job must reach a terminal state.
	for _, info := range m.List() {
		if j, ok := m.Get(info.ID); ok {
			waitDone(t, j)
		}
	}
	st := m.Stats()
	if st.Submitted != jobs {
		t.Fatalf("submitted = %d, want %d", st.Submitted, jobs)
	}
	if st.Completed+st.Canceled+st.Failed != jobs {
		t.Fatalf("terminal counts %d+%d+%d != %d", st.Completed, st.Canceled, st.Failed, jobs)
	}
}
