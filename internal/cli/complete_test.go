package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompleteDefaultPrintsDocument(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Complete([]string{"-dtd", dtdPath, "-root", "r",
		filepath.Join(docsDir, "pv.xml")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	// The completed document lands on stdout and must contain an inserted
	// <d> wrapper; the summary goes to stderr.
	if !strings.Contains(out.String(), "<d>") || strings.Contains(out.String(), "completed (+") {
		t.Errorf("stdout:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "completed (+") {
		t.Errorf("stderr missing summary:\n%s", errOut.String())
	}
}

func TestCompleteDiffMode(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Complete([]string{"-dtd", dtdPath, "-root", "r", "-diff",
		filepath.Join(docsDir, "pv.xml"), filepath.Join(docsDir, "valid1.xml")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "+<d> at /r/a[0]") {
		t.Errorf("diff records missing:\n%s", text)
	}
	if !strings.Contains(text, "valid1.xml: already valid (0 insertions)") {
		t.Errorf("already-valid record missing:\n%s", text)
	}
	// Diff mode must not dump whole documents on stdout.
	if strings.Contains(text, "</r>") {
		t.Errorf("diff mode printed a document:\n%s", text)
	}
}

func TestCompleteInPlace(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	target := filepath.Join(docsDir, "pv.xml")
	valid := filepath.Join(docsDir, "valid1.xml")
	validBefore, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := Complete([]string{"-dtd", dtdPath, "-root", "r", "-in-place", target, valid}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	rewritten, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rewritten), "<d>") {
		t.Errorf("in-place rewrite missing completion:\n%s", rewritten)
	}
	// The file is now valid: a second run reports already valid and leaves
	// it untouched.
	out.Reset()
	errOut.Reset()
	if code := Complete([]string{"-dtd", dtdPath, "-root", "r", "-in-place", target}, &out, &errOut); code != 0 {
		t.Fatalf("second run exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "already valid") {
		t.Errorf("second run stderr:\n%s", errOut.String())
	}
	// An already-valid file is never rewritten.
	validAfter, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if string(validAfter) != string(validBefore) {
		t.Errorf("already-valid file was rewritten")
	}
}

func TestCompleteFailuresAndExitCode(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Complete([]string{"-dtd", dtdPath, "-root", "r", "-diff", docsDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	// Failure diagnostics live on stderr so stdout stays redirectable.
	diag := errOut.String()
	if !strings.Contains(diag, "notpv.xml: NOT potentially valid") {
		t.Errorf("not-PV verdict missing from stderr:\n%s", diag)
	}
	if !strings.Contains(diag, "broken.xml: cannot complete") {
		t.Errorf("malformed verdict missing from stderr:\n%s", diag)
	}
	if strings.Contains(out.String(), "NOT potentially valid") || strings.Contains(out.String(), "cannot complete") {
		t.Errorf("failure diagnostics leaked to stdout:\n%s", out.String())
	}
	if !strings.Contains(diag, "inserted elements") {
		t.Errorf("summary missing:\n%s", diag)
	}
}

func TestCompleteUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := Complete(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := Complete([]string{"-dtd", "x.dtd", "-root", "r", "/nonexistent-dir-xyz"}, &out, &errOut); code != 2 {
		t.Errorf("missing input: exit = %d, want 2", code)
	}
}
