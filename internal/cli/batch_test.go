package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// writeBatchDir creates a corpus directory: two valid docs, one potentially
// valid, one not-PV, one malformed, plus a non-XML file that must be
// skipped, and a nested subdirectory.
func writeBatchDir(t *testing.T) (dtdPath, dir string) {
	t.Helper()
	dir = t.TempDir()
	dtdPath = filepath.Join(dir, "schema", "fig1.dtd")
	if err := os.MkdirAll(filepath.Dir(dtdPath), 0o755); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "docs", "nested")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		dtdPath:                                  dtd.Figure1,
		filepath.Join(dir, "docs", "valid1.xml"): `<r><a><c>x</c><d></d></a></r>`,
		filepath.Join(sub, "valid2.xml"):         `<r><a><c>x</c><d></d></a></r>`,
		filepath.Join(dir, "docs", "pv.xml"):     `<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>`,
		filepath.Join(dir, "docs", "notpv.xml"):  `<r><a><b>x</b><e></e><c>y</c></a></r>`,
		filepath.Join(dir, "docs", "broken.xml"): `<r><a>`,
		filepath.Join(dir, "docs", "readme.txt"): `not xml`,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dtdPath, filepath.Join(dir, "docs")
}

func TestBatchDirectory(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Batch([]string{"-dtd", dtdPath, "-root", "r", "-workers", "4", docsDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"valid1.xml: valid",
		"valid2.xml: valid",
		"pv.xml: potentially valid (encoding incomplete)",
		"notpv.xml: NOT potentially valid",
		"broken.xml: malformed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stdout missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "readme.txt") {
		t.Errorf("non-XML file was checked:\n%s", text)
	}
	summary := errOut.String()
	if !strings.Contains(summary, "checked 5 documents (4 workers, 0 mmapped, 0 streamed): 3 potentially valid, 2 valid, 1 malformed") {
		t.Errorf("summary:\n%s", summary)
	}
	// The byte-path batch reports per-file throughput.
	if !strings.Contains(summary, "bytes/sec") || !strings.Contains(summary, "bytes/file avg") {
		t.Errorf("summary missing per-file throughput:\n%s", summary)
	}
}

func TestBatchQuietAllPV(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Batch([]string{"-dtd", dtdPath, "-root", "r", "-q",
		filepath.Join(docsDir, "valid1.xml"), filepath.Join(docsDir, "pv.xml")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("quiet mode printed verdicts:\n%s", out.String())
	}
}

// TestBatchMmapAndPlainPaths runs the same corpus once with mmap forced on
// (threshold 1 byte) and once forced off (threshold -1): verdicts and
// counts must be identical, and the summary must report how many files
// were mapped.
func TestBatchMmapAndPlainPaths(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	// A document big enough that mapping it is plausible in production too.
	big := `<r><a><c>` + strings.Repeat("A quick brown fox. ", 5000) + `</c><d></d></a></r>`
	if err := os.WriteFile(filepath.Join(docsDir, "big.xml"), []byte(big), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(mmapFlag string) (string, string, int) {
		var out, errOut strings.Builder
		code := Batch([]string{"-dtd", dtdPath, "-root", "r", "-workers", "2", "-mmap", mmapFlag, docsDir}, &out, &errOut)
		return out.String(), errOut.String(), code
	}
	mOut, mSummary, mCode := run("1")
	pOut, pSummary, pCode := run("-1")
	if mCode != pCode {
		t.Fatalf("exit codes diverge: mmap=%d plain=%d", mCode, pCode)
	}
	if mOut != pOut {
		t.Errorf("verdicts diverge between mmap and plain read:\nmmap:\n%s\nplain:\n%s", mOut, pOut)
	}
	if !strings.Contains(mOut, "big.xml: valid") {
		t.Errorf("big document verdict missing:\n%s", mOut)
	}
	if !strings.Contains(mSummary, "6 mmapped") {
		t.Errorf("mmap summary should report 6 mapped files:\n%s", mSummary)
	}
	if !strings.Contains(pSummary, "0 mmapped") {
		t.Errorf("plain summary should report 0 mapped files:\n%s", pSummary)
	}
}

// TestBatchStreamAt routes the whole corpus through the bounded-memory
// reader path with a 1-byte threshold: verdicts keep their exit-code
// semantics, render PV-only (no full-validity claim), and the summary
// accounts the streamed files.
func TestBatchStreamAt(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var out, errOut strings.Builder
	code := Batch([]string{"-dtd", dtdPath, "-root", "r", "-stream-at", "1", docsDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"valid1.xml: potentially valid",
		"pv.xml: potentially valid",
		"notpv.xml: NOT potentially valid",
		"broken.xml: malformed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stdout missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "encoding incomplete") || strings.Contains(text, ": valid\n") {
		t.Errorf("reader path must not claim the full-validity bit:\n%s", text)
	}
	summary := errOut.String()
	if !strings.Contains(summary, "5 streamed") || !strings.Contains(summary, "checked 5 documents") {
		t.Errorf("summary should account streamed files:\n%s", summary)
	}
}

func TestBatchUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := Batch(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := Batch([]string{"-dtd", "x.dtd", "-root", "r", "/nonexistent-dir-xyz"}, &out, &errOut); code != 2 {
		t.Errorf("missing input: exit = %d, want 2", code)
	}
}

// TestBatchAsync pins the -async job mode to the synchronous verdicts:
// same per-document lines, same exit code, plus job progress on stderr.
func TestBatchAsync(t *testing.T) {
	dtdPath, docsDir := writeBatchDir(t)
	var syncOut, syncErr strings.Builder
	syncCode := Batch([]string{"-dtd", dtdPath, "-root", "r", docsDir}, &syncOut, &syncErr)
	var out, errOut strings.Builder
	code := Batch([]string{"-dtd", dtdPath, "-root", "r", "-async", "-poll", "1ms", docsDir}, &out, &errOut)
	if code != syncCode {
		t.Fatalf("async exit = %d, sync = %d\nstderr:\n%s", code, syncCode, errOut.String())
	}
	if out.String() != syncOut.String() {
		t.Errorf("async verdicts diverge from sync:\nasync:\n%s\nsync:\n%s", out.String(), syncOut.String())
	}
	text := errOut.String()
	if !strings.Contains(text, "submitted 5 documents") {
		t.Errorf("stderr missing submission line:\n%s", text)
	}
	if !strings.Contains(text, "checked 5 documents async") {
		t.Errorf("stderr missing async summary:\n%s", text)
	}
}
