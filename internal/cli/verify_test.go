package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// writeReceiptFixture generates a real receipt through the engine and
// writes it — plus one of the original documents — to disk, returning
// both paths. The engine is closed before returning: everything after is
// offline.
func writeReceiptFixture(t *testing.T) (receiptPath, docPath string, rec *pv.Receipt) {
	t.Helper()
	eng, err := pv.OpenEngine(pv.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	schema := pv.MustCompileDTD(`<!ELEMENT a (x*)><!ELEMENT x (#PCDATA)>`, "a", pv.Options{})
	docs := []pv.Doc{
		{ID: "good", Content: `<a><x>one</x></a>`},
		{ID: "empty", Content: `<a></a>`},
		{ID: "broken", Content: `<a><x>`},
	}
	_, _, rec, err = eng.CheckBatchReceipt(schema, docs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	receiptPath = filepath.Join(dir, "receipt.json")
	if err := os.WriteFile(receiptPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	docPath = filepath.Join(dir, "good.xml")
	if err := os.WriteFile(docPath, []byte(docs[0].Content), 0o644); err != nil {
		t.Fatal(err)
	}
	return receiptPath, docPath, rec
}

// TestVerifyAllProofs pins the happy path: every proof in a served
// receipt verifies offline, exit 0.
func TestVerifyAllProofs(t *testing.T) {
	receiptPath, _, _ := writeReceiptFixture(t)
	var out, errb strings.Builder
	if code := Verify([]string{"-receipt", receiptPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "3 proofs verified") {
		t.Fatalf("summary missing: %s", out.String())
	}
}

// TestVerifySelection pins -id and -index single-entry selection and the
// -content digest cross-check against the original document.
func TestVerifySelection(t *testing.T) {
	receiptPath, docPath, _ := writeReceiptFixture(t)
	var out, errb strings.Builder
	if code := Verify([]string{"-receipt", receiptPath, "-id", "good", "-content", docPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	out.Reset()
	if code := Verify([]string{"-receipt", receiptPath, "-index", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "id=broken") || !strings.Contains(out.String(), "verdict=malformed") {
		t.Fatalf("index selection output: %s", out.String())
	}
	// A different document's content must not pass the digest check.
	wrong := filepath.Join(t.TempDir(), "wrong.xml")
	if err := os.WriteFile(wrong, []byte(`<a><x>two</x></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := Verify([]string{"-receipt", receiptPath, "-id", "good", "-content", wrong}, &out, &errb); code != 1 {
		t.Fatalf("digest mismatch exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "content digest mismatch") {
		t.Fatalf("digest failure output: %s", out.String())
	}
}

// TestVerifyTamperedReceipt pins that any mutation of a stored receipt —
// leaf field, proof record or root — exits 1.
func TestVerifyTamperedReceipt(t *testing.T) {
	receiptPath, _, rec := writeReceiptFixture(t)
	data, err := os.ReadFile(receiptPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"verdict":"malformed"`, `"verdict":"valid"`, 1)
	if tampered == string(data) {
		t.Fatal("fixture receipt has no malformed verdict to tamper with")
	}
	badPath := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(badPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := Verify([]string{"-receipt", badPath}, &out, &errb); code != 1 {
		t.Fatalf("tampered receipt exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL line: %s", out.String())
	}
	// A wrong trusted root fails even an untampered receipt.
	rb := []byte(rec.Root)
	if rb[5] == '0' {
		rb[5] = '1'
	} else {
		rb[5] = '0'
	}
	otherRoot := string(rb)
	out.Reset()
	if code := Verify([]string{"-receipt", receiptPath, "-root", otherRoot}, &out, &errb); code != 1 {
		t.Fatalf("wrong -root exited %d: %s", code, out.String())
	}
}

// TestVerifyUsageErrors pins the exit-2 paths: missing -receipt, missing
// file, unmatched selection, -content over multiple entries.
func TestVerifyUsageErrors(t *testing.T) {
	receiptPath, docPath, _ := writeReceiptFixture(t)
	var out, errb strings.Builder
	for _, args := range [][]string{
		{},
		{"-receipt", filepath.Join(t.TempDir(), "absent.json")},
		{"-receipt", receiptPath, "-id", "nobody"},
		{"-receipt", receiptPath, "-content", docPath}, // 3 entries selected
		{"-receipt", receiptPath, "stray-positional"},
	} {
		out.Reset()
		errb.Reset()
		if code := Verify(args, &out, &errb); code != 2 {
			t.Fatalf("args %v exited %d\nstderr: %s", args, code, errb.String())
		}
	}
}
