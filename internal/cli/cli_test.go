package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtd"
)

// writeFixtures creates a temp dir with the Figure 1 DTD and Example 1's
// documents, returning the paths.
func writeFixtures(t *testing.T) (dtdPath, wPath, sPath string) {
	t.Helper()
	dir := t.TempDir()
	dtdPath = filepath.Join(dir, "fig1.dtd")
	wPath = filepath.Join(dir, "w.xml")
	sPath = filepath.Join(dir, "s.xml")
	files := map[string]string{
		dtdPath: dtd.Figure1,
		wPath:   `<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`,
		sPath:   `<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dtdPath, wPath, sPath
}

func TestPVCheckVerdicts(t *testing.T) {
	dtdPath, wPath, sPath := writeFixtures(t)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", wPath, sPath}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (w is not PV)", code)
	}
	text := out.String()
	if !strings.Contains(text, "w.xml: NOT potentially valid") {
		t.Errorf("missing w verdict:\n%s", text)
	}
	if !strings.Contains(text, "s.xml: potentially valid (encoding incomplete)") {
		t.Errorf("missing s verdict:\n%s", text)
	}
	if !strings.Contains(errOut.String(), "class non-recursive") {
		t.Errorf("missing schema info:\n%s", errOut.String())
	}
}

func TestPVCheckComplete(t *testing.T) {
	dtdPath, _, sPath := writeFixtures(t)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", "-complete", sPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "completion (+2 elements)") {
		t.Errorf("missing completion:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "<d>A quick brown</d>") {
		t.Errorf("completion should wrap b's text in d:\n%s", out.String())
	}
}

func TestPVCheckStream(t *testing.T) {
	dtdPath, wPath, sPath := writeFixtures(t)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", "-stream", wPath, sPath}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "s.xml: potentially valid") {
		t.Errorf("stream verdicts:\n%s", out.String())
	}
}

// TestPVCheckStreamAt pins the auto-streaming threshold: with -stream-at 1
// every file takes the bounded-memory reader path (PV-only verdicts, no
// "valid" line even for fully valid documents), and the verdicts match the
// in-memory checker's.
func TestPVCheckStreamAt(t *testing.T) {
	dtdPath, wPath, sPath := writeFixtures(t)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", "-stream-at", "1", wPath, sPath}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (w is not PV)\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "s.xml: potentially valid") {
		t.Errorf("streamed verdicts:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "w.xml: NOT potentially valid") {
		t.Errorf("streamed verdicts:\n%s", out.String())
	}
	if strings.Contains(out.String(), "encoding incomplete") {
		t.Errorf("reader path must not claim the full-validity bit:\n%s", out.String())
	}

	// A negative threshold disables auto-streaming: the full checker runs
	// and the valid document gets its "valid" verdict back.
	out.Reset()
	if code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", "-stream-at", "-1", sPath}, &out, &errOut); code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "s.xml: potentially valid (encoding incomplete)") {
		t.Errorf("non-streamed verdict:\n%s", out.String())
	}
}

func TestPVCheckValidVerdict(t *testing.T) {
	dtdPath, _, _ := writeFixtures(t)
	dir := t.TempDir()
	ext := filepath.Join(dir, "ext.xml")
	os.WriteFile(ext, []byte(`<r><a><b><d>x</d></b><c>y</c><d>z<e></e></d></a></r>`), 0o644)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", ext}, &out, &errOut)
	if code != 0 || !strings.Contains(out.String(), "ext.xml: valid") {
		t.Errorf("exit=%d out=%s", code, out.String())
	}
}

func TestPVCheckUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := PVCheck(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if code := PVCheck([]string{"-dtd", "x.dtd", "-xsd", "y.xsd", "-root", "r", "doc"}, &out, &errOut); code != 2 {
		t.Errorf("both schemas: exit = %d, want 2", code)
	}
	if code := PVCheck([]string{"-dtd", "/nonexistent.dtd", "-root", "r", "doc"}, &out, &errOut); code != 2 {
		t.Errorf("missing dtd: exit = %d, want 2", code)
	}
}

func TestPVCheckMissingDocument(t *testing.T) {
	dtdPath, _, _ := writeFixtures(t)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", "/nonexistent.xml"}, &out, &errOut)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestPVCheckMalformedDocument(t *testing.T) {
	dtdPath, _, _ := writeFixtures(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	os.WriteFile(bad, []byte(`<r><a></r>`), 0o644)
	var out, errOut strings.Builder
	code := PVCheck([]string{"-dtd", dtdPath, "-root", "r", bad}, &out, &errOut)
	if code != 2 {
		t.Errorf("exit = %d, want 2 (well-formedness error)", code)
	}
}

func TestDTDInfoBasics(t *testing.T) {
	dtdPath, _, _ := writeFixtures(t)
	var out, errOut strings.Builder
	code := DTDInfo([]string{"-dtd", dtdPath, "-dag", "-reach", "-grammar"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"elements: 7",
		"k (size measure): 19",
		"class: non-recursive",
		"DAG(a) entry=[0]",
		"0(PCDATA, e)", // Figure 4's d star-group
		"reachability",
		"G(T, r):",
		"G'(T, r):",
		"nt_a -> hat_a", // the relaxation rules
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dtdinfo output missing %q", want)
		}
	}
}

func TestDTDInfoClassification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t2.dtd")
	os.WriteFile(path, []byte(dtd.T2), 0o644)
	var out, errOut strings.Builder
	if code := DTDInfo([]string{"-dtd", path}, &out, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if !strings.Contains(out.String(), "class: PV-strong recursive") {
		t.Errorf("missing classification:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PV-strong recursive elements: [a]") {
		t.Errorf("missing strong elements:\n%s", out.String())
	}
}

func TestDTDInfoUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := DTDInfo(nil, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if code := DTDInfo([]string{"-dtd", "/nonexistent.dtd"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
