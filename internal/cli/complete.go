package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

// Complete runs the `pvcheck complete` subcommand: complete a directory
// (or explicit file list) of potentially valid XML documents into valid
// ones, fanned out over the engine's worker pool.
//
// Output modes: by default each completed document is printed to stdout
// (summaries and failure diagnostics go to stderr, so stdout can be
// redirected safely); -diff prints the insertion records
// (path/index/name) instead of the document; -in-place rewrites each
// input file with its completion. -diff and -in-place compose.
//
// Exit codes: 0 every document completed (or was already valid), 1 some
// document is malformed or not potentially valid, 2 usage or input errors.
func Complete(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvcheck complete", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "path to the DTD file (this or -xsd required)")
	xsdPath := fs.String("xsd", "", "path to an XML Schema file (subset; alternative to -dtd)")
	root := fs.String("root", "", "root element (required)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "disk-backed compiled-schema cache (skips recompiling across runs)")
	diffMode := fs.Bool("diff", false, "print insertion records instead of the completed document")
	inPlace := fs.Bool("in-place", false, "rewrite each input file with its completion")
	ws := fs.Bool("ws", false, "ignore whitespace-only text nodes")
	anyRoot := fs.Bool("anyroot", false, "accept any declared element as document root")
	depth := fs.Int("depth", 0, "extension depth bound for PV-strong recursive DTDs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*dtdPath == "") == (*xsdPath == "") || *root == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pvcheck complete (-dtd schema.dtd | -xsd schema.xsd) -root elem [-diff] [-in-place] [flags] dir-or-doc.xml...")
		fs.PrintDefaults()
		return 2
	}

	paths, err := collectXML(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck complete: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "pvcheck complete: no XML files found")
		return 2
	}

	eng, err := pv.OpenEngine(pv.EngineConfig{Workers: *workers, SchemaCacheDir: *cacheDir})
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck complete: %v\n", err)
		return 2
	}
	opts := pv.Options{MaxDepth: *depth, IgnoreWhitespaceText: *ws, AllowAnyRoot: *anyRoot}
	var schema *pv.Schema
	if *dtdPath != "" {
		var data []byte
		if data, err = os.ReadFile(*dtdPath); err == nil {
			schema, err = eng.CompileDTD(string(data), *root, opts)
		}
	} else {
		var data []byte
		if data, err = os.ReadFile(*xsdPath); err == nil {
			schema, err = eng.CompileXSD(string(data), *root, opts)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck complete: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "schema: %s\n", schema.Info())

	docs := make([]pv.Doc, 0, len(paths))
	exit := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck complete: %v\n", err)
			exit = 2
			continue
		}
		docs = append(docs, pv.Doc{ID: path, Bytes: data})
	}

	results, stats := eng.CompleteBatch(schema, docs, *diffMode)
	for _, r := range results {
		// Failure diagnostics go to stderr like the summaries: stdout
		// carries only completed documents (or diff records), so
		// redirecting it stays safe even when some input fails.
		switch {
		case r.Err != nil:
			fmt.Fprintf(stderr, "%s: cannot complete: %v\n", r.ID, r.Err)
			if exit < 1 {
				exit = 1
			}
			continue
		case !r.Completed:
			fmt.Fprintf(stderr, "%s: NOT potentially valid: %s\n", r.ID, r.Detail)
			if exit < 1 {
				exit = 1
			}
			continue
		case r.AlreadyValid:
			fmt.Fprintf(stderr, "%s: already valid\n", r.ID)
		default:
			fmt.Fprintf(stderr, "%s: completed (+%d elements)\n", r.ID, r.Inserted)
		}
		if *diffMode {
			if r.Inserted == 0 {
				fmt.Fprintf(stdout, "%s: already valid (0 insertions)\n", r.ID)
			} else {
				for _, ins := range r.Insertions {
					fmt.Fprintf(stdout, "%s: %s\n", r.ID, ins)
				}
			}
		}
		if *inPlace {
			if r.Inserted > 0 {
				if err := os.WriteFile(r.ID, []byte(r.Output), 0o644); err != nil {
					fmt.Fprintf(stderr, "pvcheck complete: %v\n", err)
					exit = 2
				}
			}
		} else if !*diffMode {
			fmt.Fprintln(stdout, r.Output)
		}
	}
	fmt.Fprintf(stderr, "completed %d documents (%d workers): %d completable, %d already valid, %d inserted elements, %d malformed — %.0f docs/sec\n",
		stats.Docs, stats.Workers, stats.PotentiallyValid, stats.Valid, stats.Inserted,
		stats.Malformed, stats.DocsPerSec)
	return exit
}
