package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/receipt"
)

// receiptFile is the subset of a served receipt the verifier needs: the
// root, the committed leaves and their proofs. It decodes both the
// ?receipt=1 response object and the GET /jobs/{id}/receipt body.
type receiptFile struct {
	Root   string `json:"root"`
	Count  int    `json:"count"`
	Kind   string `json:"kind"`
	Proofs []struct {
		Index int          `json:"index"`
		Leaf  receipt.Leaf `json:"leaf"`
		Proof string       `json:"proof"`
	} `json:"proofs"`
}

// Verify runs the `pvcheck verify` subcommand: check a verdict receipt's
// inclusion proofs completely offline. It is pure computation over the
// receipt file — no engine, no schema, no cache directory — so an auditor
// holding only the receipt (and optionally the trusted root and original
// document) can validate what the server claimed. Exit codes: 0 every
// checked proof verifies, 1 verification failure, 2 usage or input
// errors.
func Verify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvcheck verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("receipt", "", "receipt JSON file (the ?receipt=1 response object or the /jobs/{id}/receipt body; required)")
	rootOverride := fs.String("root", "", "trusted root record to verify against (default: the receipt's own root)")
	docID := fs.String("id", "", "verify only the entry whose leaf carries this document id")
	index := fs.Int("index", -1, "verify only the entry at this batch index")
	contentPath := fs.String("content", "", "original document file; its digest must match the selected entry's leaf")
	quiet := fs.Bool("q", false, "print only failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *path == "" || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: pvcheck verify -receipt receipt.json [-root pvr1:...] [-id docID | -index N] [-content doc.xml]")
		fs.PrintDefaults()
		return 2
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck verify: %v\n", err)
		return 2
	}
	var rec receiptFile
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(stderr, "pvcheck verify: parsing receipt: %v\n", err)
		return 2
	}
	root := rec.Root
	if *rootOverride != "" {
		root = *rootOverride
	}
	if root == "" {
		fmt.Fprintln(stderr, "pvcheck verify: receipt has no root (pass a trusted one with -root)")
		return 2
	}
	if len(rec.Proofs) == 0 {
		fmt.Fprintln(stderr, "pvcheck verify: receipt carries no proofs")
		return 2
	}

	// Select the entries to check: one by -id/-index, else all of them.
	selected := make([]int, 0, len(rec.Proofs))
	for i := range rec.Proofs {
		if *docID != "" && rec.Proofs[i].Leaf.DocID != *docID {
			continue
		}
		if *index >= 0 && rec.Proofs[i].Index != *index {
			continue
		}
		selected = append(selected, i)
	}
	if len(selected) == 0 {
		fmt.Fprintln(stderr, "pvcheck verify: no receipt entry matches the selection")
		return 2
	}
	if *contentPath != "" && len(selected) != 1 {
		fmt.Fprintln(stderr, "pvcheck verify: -content needs exactly one selected entry (use -id or -index)")
		return 2
	}

	failures := 0
	for _, i := range selected {
		p := &rec.Proofs[i]
		ok := receipt.Verify(root, p.Leaf, p.Proof)
		if *contentPath != "" && ok {
			content, rerr := os.ReadFile(*contentPath)
			if rerr != nil {
				fmt.Fprintf(stderr, "pvcheck verify: %v\n", rerr)
				return 2
			}
			if got := receipt.DigestContent(content); got != p.Leaf.ContentDigest {
				fmt.Fprintf(stdout, "FAIL  index=%d id=%s: content digest mismatch (file %s, leaf %s)\n",
					p.Index, p.Leaf.DocID, got, p.Leaf.ContentDigest)
				failures++
				continue
			}
		}
		if !ok {
			fmt.Fprintf(stdout, "FAIL  index=%d id=%s verdict=%s: proof does not verify against %s\n",
				p.Index, p.Leaf.DocID, p.Leaf.Verdict, root)
			failures++
			continue
		}
		if !*quiet {
			fmt.Fprintf(stdout, "ok    index=%d id=%s verdict=%s insertions=%d\n",
				p.Index, p.Leaf.DocID, p.Leaf.Verdict, p.Leaf.Insertions)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "verify: %d of %d checked proofs FAILED against %s\n", failures, len(selected), root)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "verify: %d proofs verified against %s\n", len(selected), root)
	}
	return 0
}
