package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/mmapio"
)

// Batch runs the `pvcheck batch` subcommand: check a directory (or explicit
// file list) of XML documents against one schema, fanned out over the
// engine's worker pool. Exit codes: 0 every document is potentially valid,
// 1 some document is not (or is malformed), 2 usage or input errors.
func Batch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvcheck batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "path to the DTD file (this or -xsd required)")
	xsdPath := fs.String("xsd", "", "path to an XML Schema file (subset; alternative to -dtd)")
	root := fs.String("root", "", "root element (required)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	mmapAt := fs.Int64("mmap", mmapio.DefaultThreshold, "memory-map files at least this many bytes large (0 maps every non-empty file, <0 always reads)")
	streamAt := fs.Int64("stream-at", 64<<20, "check files at least this many bytes large through the bounded-memory reader path instead of loading them (PV-only verdict, <0 never)")
	cacheDir := fs.String("cache-dir", "", "disk-backed compiled-schema cache (skips recompiling across runs)")
	pvOnly := fs.Bool("pvonly", false, "skip the full-validity bit (fastest)")
	async := fs.Bool("async", false, "submit through the engine's async job queue and poll to completion")
	poll := fs.Duration("poll", 100*time.Millisecond, "progress poll interval in -async mode")
	quiet := fs.Bool("q", false, "print only failures and the summary")
	ws := fs.Bool("ws", false, "ignore whitespace-only text nodes")
	anyRoot := fs.Bool("anyroot", false, "accept any declared element as document root")
	depth := fs.Int("depth", 0, "extension depth bound for PV-strong recursive DTDs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*dtdPath == "") == (*xsdPath == "") || *root == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pvcheck batch (-dtd schema.dtd | -xsd schema.xsd) -root elem [flags] dir-or-doc.xml...")
		fs.PrintDefaults()
		return 2
	}

	paths, err := collectXML(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "pvcheck batch: no XML files found")
		return 2
	}

	eng, err := pv.OpenEngine(pv.EngineConfig{Workers: *workers, PVOnly: *pvOnly, SchemaCacheDir: *cacheDir})
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	opts := pv.Options{MaxDepth: *depth, IgnoreWhitespaceText: *ws, AllowAnyRoot: *anyRoot}
	var schema *pv.Schema
	if *dtdPath != "" {
		var data []byte
		if data, err = os.ReadFile(*dtdPath); err == nil {
			schema, err = eng.CompileDTD(string(data), *root, opts)
		}
	} else {
		var data []byte
		if data, err = os.ReadFile(*xsdPath); err == nil {
			schema, err = eng.CompileXSD(string(data), *root, opts)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "schema: %s\n", schema.Info())

	docs := make([]pv.Doc, 0, len(paths))
	exit := 0
	mapped := 0
	var releases []func()
	var streamPaths []string
	for _, path := range paths {
		// Files past the streaming threshold never get slurped or mapped:
		// they take the bounded-memory reader path after the batch, so a
		// multi-GB outlier in the corpus cannot blow up peak RSS.
		if streamSized(path, *streamAt) {
			streamPaths = append(streamPaths, path)
			continue
		}
		// One read per file, checked on the zero-copy byte path: the bytes
		// are never round-tripped through a string. Files at or above the
		// mmap threshold are memory-mapped straight into the checker (the
		// engine never retains document bytes, so unmapping after the batch
		// is safe); smaller files — or a mapping failure — take a plain
		// read.
		data, release, didMap, err := readDoc(path, *mmapAt)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
			exit = 2
			continue
		}
		if didMap {
			mapped++
		}
		releases = append(releases, release)
		docs = append(docs, pv.Doc{ID: path, Bytes: data})
	}

	if *async {
		// The async client mode: submit the whole corpus as one job (the
		// CLI twin of POST /batch?async=1), poll its progress, then stream
		// the retained NDJSON verdicts. The mmap releases must wait until
		// the job has finished — its workers read the mapped bytes.
		code := runAsyncBatch(eng, schema, docs, *poll, *quiet, *pvOnly, stdout, stderr)
		for _, release := range releases {
			release()
		}
		if exit < code {
			exit = code
		}
		if code, _ := checkStreamedFiles(eng, schema, streamPaths, *quiet, stdout, stderr); exit < code {
			exit = code
		}
		return exit
	}
	results, stats := eng.CheckBatch(schema, docs)
	for _, release := range releases {
		release()
	}
	for _, r := range results {
		errMsg := ""
		if r.Err != nil {
			errMsg = r.Err.Error()
		}
		code := printVerdict(stdout, r.ID, errMsg, r.Valid, r.PotentiallyValid, r.Detail, *quiet, *pvOnly)
		if exit < code {
			exit = code
		}
	}
	code, streamStats := checkStreamedFiles(eng, schema, streamPaths, *quiet, stdout, stderr)
	if exit < code {
		exit = code
	}
	stats.Docs += streamStats.Docs
	stats.Bytes += streamStats.Bytes
	stats.PotentiallyValid += streamStats.PotentiallyValid
	stats.Malformed += streamStats.Malformed
	perFileBytes := 0.0
	if stats.Docs > 0 {
		perFileBytes = float64(stats.Bytes) / float64(stats.Docs)
	}
	fmt.Fprintf(stderr, "checked %d documents (%d workers, %d mmapped, %d streamed): %d potentially valid, %d valid, %d malformed — %.0f docs/sec, %.2f MB/sec, %.0f bytes/sec (%.0f bytes/file avg)\n",
		stats.Docs, stats.Workers, mapped, len(streamPaths), stats.PotentiallyValid, stats.Valid, stats.Malformed,
		stats.DocsPerSec, stats.MBPerSec, stats.DocsPerSec*perFileBytes, perFileBytes)
	return exit
}

// checkStreamedFiles checks the over-threshold files one at a time through
// the engine's bounded-memory reader path and prints their verdicts (after
// the batch's, in sorted path order). The reader path never computes the
// full-validity bit, so verdict lines render in the PV-only form.
func checkStreamedFiles(eng *pv.Engine, schema *pv.Schema, paths []string, quiet bool, stdout, stderr io.Writer) (int, pv.BatchStats) {
	exit := 0
	var stats pv.BatchStats
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
			exit = 2
			continue
		}
		r := eng.CheckReader(schema, path, f)
		f.Close()
		stats.Docs++
		stats.Bytes += int64(r.Bytes)
		errMsg := ""
		if r.Err != nil {
			errMsg = r.Err.Error()
		}
		switch {
		case errMsg != "":
			stats.Malformed++
		case r.PotentiallyValid:
			stats.PotentiallyValid++
		}
		code := printVerdict(stdout, r.ID, errMsg, false, r.PotentiallyValid, r.Detail, quiet, true)
		if exit < code {
			exit = code
		}
	}
	return exit, stats
}

// printVerdict renders one per-document verdict line and returns its exit
// code contribution (0 ok, 1 failure) — shared by the synchronous batch
// and the async job poller.
func printVerdict(stdout io.Writer, id, errMsg string, valid, pvalid bool, detail string, quiet, pvOnly bool) int {
	switch {
	case errMsg != "":
		fmt.Fprintf(stdout, "%s: malformed: %s\n", id, errMsg)
		return 1
	case valid:
		if !quiet {
			fmt.Fprintf(stdout, "%s: valid\n", id)
		}
		return 0
	case pvalid:
		if !quiet {
			// Under -pvonly the full-validity bit is never computed, so
			// "encoding incomplete" would be a claim we did not check.
			if pvOnly {
				fmt.Fprintf(stdout, "%s: potentially valid\n", id)
			} else {
				fmt.Fprintf(stdout, "%s: potentially valid (encoding incomplete)\n", id)
			}
		}
		return 0
	default:
		fmt.Fprintf(stdout, "%s: NOT potentially valid: %s\n", id, detail)
		return 1
	}
}

// verdictLine is the NDJSON wire form of one async job result (the
// resultJSON shape of docs/jobs-api.md).
type verdictLine struct {
	ID               string `json:"id"`
	Index            int    `json:"index"`
	PotentiallyValid bool   `json:"potentiallyValid"`
	Valid            bool   `json:"valid"`
	Detail           string `json:"detail"`
	Error            string `json:"error"`
}

// runAsyncBatch submits one async checking job, polls it to a terminal
// state (reporting progress at the poll interval), prints the retained
// verdicts, and returns the exit code.
func runAsyncBatch(eng *pv.Engine, schema *pv.Schema, docs []pv.Doc, poll time.Duration, quiet, pvOnly bool, stdout, stderr io.Writer) int {
	if poll <= 0 {
		// A zero interval would busy-spin the progress loop and flood
		// stderr; clamp like the other duration knobs.
		poll = 100 * time.Millisecond
	}
	job, err := eng.SubmitBatch(schema, docs)
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: submitting async job: %v\n", err)
		return 2
	}
	// The one-shot CLI collects its own results, so drop the job (and any
	// spill file under -cache-dir) instead of leaving it to a TTL reaper
	// that dies with the process.
	defer eng.RemoveJob(job.ID())
	fmt.Fprintf(stderr, "job %s: submitted %d documents\n", job.ID(), len(docs))
	for done := false; !done; {
		select {
		case <-job.Done():
			done = true
		case <-time.After(poll):
			info := job.Info()
			fmt.Fprintf(stderr, "job %s: %s %d/%d\n", info.ID, info.State, info.Done, info.Total)
		}
	}
	info := job.Info()
	if info.State != "done" {
		fmt.Fprintf(stderr, "pvcheck batch: job %s ended %s: %s\n", info.ID, info.State, info.Error)
		return 2
	}
	// Stream the retained NDJSON through a pipe rather than buffering the
	// whole result set: a spilled multi-gigabyte job must not become the
	// CLI's peak RSS.
	pr, pw := io.Pipe()
	go func() {
		_, err := job.WriteResults(pw)
		pw.CloseWithError(err)
	}()
	// On an early error return, closing the read end unblocks the writer
	// goroutine instead of leaking it on a full pipe.
	defer pr.Close()
	exit := 0
	var pvCount, valid, malformed int
	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 64<<10), 128<<20)
	for sc.Scan() {
		var v verdictLine
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			fmt.Fprintf(stderr, "pvcheck batch: bad result line: %v\n", err)
			return 2
		}
		switch {
		case v.Error != "":
			malformed++
		case v.Valid:
			valid++
			pvCount++
		case v.PotentiallyValid:
			pvCount++
		}
		code := printVerdict(stdout, v.ID, v.Error, v.Valid, v.PotentiallyValid, v.Detail, quiet, pvOnly)
		if exit < code {
			exit = code
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: reading job results: %v\n", err)
		return 2
	}
	elapsed := info.FinishedAt.Sub(*info.StartedAt)
	dps := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		dps = float64(info.Total) / secs
	}
	fmt.Fprintf(stderr, "job %s: checked %d documents async: %d potentially valid, %d valid, %d malformed — %.0f docs/sec\n",
		info.ID, info.Total, pvCount, valid, malformed, dps)
	return exit
}

// readDoc loads one document for the byte path: memory-mapped at or above
// the threshold, plain-read below it. A zero threshold maps every
// non-empty file; a negative one disables mapping entirely.
func readDoc(path string, mmapAt int64) (data []byte, release func(), mapped bool, err error) {
	if mmapAt < 0 {
		data, err = os.ReadFile(path)
		return data, func() {}, false, err
	}
	if mmapAt == 0 {
		mmapAt = 1 // mmapio treats <=0 as "default threshold"; 0 here means "map everything"
	}
	return mmapio.ReadFile(path, mmapAt)
}

// collectXML expands the argument list: directories contribute their *.xml
// files (recursively), other paths are taken verbatim. The result is
// sorted, deduplicated.
func collectXML(args []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d iofs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.EqualFold(filepath.Ext(p), ".xml") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
