package cli

import (
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
	"repro/internal/mmapio"
)

// Batch runs the `pvcheck batch` subcommand: check a directory (or explicit
// file list) of XML documents against one schema, fanned out over the
// engine's worker pool. Exit codes: 0 every document is potentially valid,
// 1 some document is not (or is malformed), 2 usage or input errors.
func Batch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvcheck batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "path to the DTD file (this or -xsd required)")
	xsdPath := fs.String("xsd", "", "path to an XML Schema file (subset; alternative to -dtd)")
	root := fs.String("root", "", "root element (required)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	mmapAt := fs.Int64("mmap", mmapio.DefaultThreshold, "memory-map files at least this many bytes large (0 maps every non-empty file, <0 always reads)")
	cacheDir := fs.String("cache-dir", "", "disk-backed compiled-schema cache (skips recompiling across runs)")
	pvOnly := fs.Bool("pvonly", false, "skip the full-validity bit (fastest)")
	quiet := fs.Bool("q", false, "print only failures and the summary")
	ws := fs.Bool("ws", false, "ignore whitespace-only text nodes")
	anyRoot := fs.Bool("anyroot", false, "accept any declared element as document root")
	depth := fs.Int("depth", 0, "extension depth bound for PV-strong recursive DTDs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*dtdPath == "") == (*xsdPath == "") || *root == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pvcheck batch (-dtd schema.dtd | -xsd schema.xsd) -root elem [flags] dir-or-doc.xml...")
		fs.PrintDefaults()
		return 2
	}

	paths, err := collectXML(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "pvcheck batch: no XML files found")
		return 2
	}

	eng, err := pv.OpenEngine(pv.EngineConfig{Workers: *workers, PVOnly: *pvOnly, SchemaCacheDir: *cacheDir})
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	opts := pv.Options{MaxDepth: *depth, IgnoreWhitespaceText: *ws, AllowAnyRoot: *anyRoot}
	var schema *pv.Schema
	if *dtdPath != "" {
		var data []byte
		if data, err = os.ReadFile(*dtdPath); err == nil {
			schema, err = eng.CompileDTD(string(data), *root, opts)
		}
	} else {
		var data []byte
		if data, err = os.ReadFile(*xsdPath); err == nil {
			schema, err = eng.CompileXSD(string(data), *root, opts)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "schema: %s\n", schema.Info())

	docs := make([]pv.Doc, 0, len(paths))
	exit := 0
	mapped := 0
	var releases []func()
	for _, path := range paths {
		// One read per file, checked on the zero-copy byte path: the bytes
		// are never round-tripped through a string. Files at or above the
		// mmap threshold are memory-mapped straight into the checker (the
		// engine never retains document bytes, so unmapping after the batch
		// is safe); smaller files — or a mapping failure — take a plain
		// read.
		data, release, didMap, err := readDoc(path, *mmapAt)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck batch: %v\n", err)
			exit = 2
			continue
		}
		if didMap {
			mapped++
		}
		releases = append(releases, release)
		docs = append(docs, pv.Doc{ID: path, Bytes: data})
	}

	results, stats := eng.CheckBatch(schema, docs)
	for _, release := range releases {
		release()
	}
	for _, r := range results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(stdout, "%s: malformed: %v\n", r.ID, r.Err)
			if exit < 1 {
				exit = 1
			}
		case r.Valid:
			if !*quiet {
				fmt.Fprintf(stdout, "%s: valid\n", r.ID)
			}
		case r.PotentiallyValid:
			if !*quiet {
				// Under -pvonly the full-validity bit is never computed, so
				// "encoding incomplete" would be a claim we did not check.
				if *pvOnly {
					fmt.Fprintf(stdout, "%s: potentially valid\n", r.ID)
				} else {
					fmt.Fprintf(stdout, "%s: potentially valid (encoding incomplete)\n", r.ID)
				}
			}
		default:
			fmt.Fprintf(stdout, "%s: NOT potentially valid: %s\n", r.ID, r.Detail)
			if exit < 1 {
				exit = 1
			}
		}
	}
	perFileBytes := 0.0
	if stats.Docs > 0 {
		perFileBytes = float64(stats.Bytes) / float64(stats.Docs)
	}
	fmt.Fprintf(stderr, "checked %d documents (%d workers, %d mmapped): %d potentially valid, %d valid, %d malformed — %.0f docs/sec, %.2f MB/sec, %.0f bytes/sec (%.0f bytes/file avg)\n",
		stats.Docs, stats.Workers, mapped, stats.PotentiallyValid, stats.Valid, stats.Malformed,
		stats.DocsPerSec, stats.MBPerSec, stats.DocsPerSec*perFileBytes, perFileBytes)
	return exit
}

// readDoc loads one document for the byte path: memory-mapped at or above
// the threshold, plain-read below it. A zero threshold maps every
// non-empty file; a negative one disables mapping entirely.
func readDoc(path string, mmapAt int64) (data []byte, release func(), mapped bool, err error) {
	if mmapAt < 0 {
		data, err = os.ReadFile(path)
		return data, func() {}, false, err
	}
	if mmapAt == 0 {
		mmapAt = 1 // mmapio treats <=0 as "default threshold"; 0 here means "map everything"
	}
	return mmapio.ReadFile(path, mmapAt)
}

// collectXML expands the argument list: directories contribute their *.xml
// files (recursively), other paths are taken verbatim. The result is
// sorted, deduplicated.
func collectXML(args []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d iofs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.EqualFold(filepath.Ext(p), ".xml") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
