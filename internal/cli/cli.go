// Package cli implements the command-line front ends (pvcheck, dtdinfo) as
// testable functions: each takes an argument vector and output writers and
// returns a process exit code. The cmd/ mains are thin wrappers.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/contentmodel"
	"repro/internal/dag"
	"repro/internal/dtd"
	"repro/internal/grammar"
	"repro/internal/reach"
)

// PVCheck runs the pvcheck command: check documents for potential validity
// and full validity against a DTD or XSD schema.
// Exit codes: 0 all potentially valid, 1 some document is not, 2 usage or
// input errors.
func PVCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "path to the DTD file (this or -xsd required)")
	xsdPath := fs.String("xsd", "", "path to an XML Schema file (subset; alternative to -dtd)")
	root := fs.String("root", "", "root element (required)")
	stream := fs.Bool("stream", false, "use the single-pass streaming checker")
	streamAt := fs.Int64("stream-at", 64<<20, "stream files at least this many bytes large through the bounded-memory checker even without -stream (<0 never)")
	completeFlag := fs.Bool("complete", false, "print a synthesized valid extension for potentially valid documents")
	ws := fs.Bool("ws", false, "ignore whitespace-only text nodes")
	anyRoot := fs.Bool("anyroot", false, "accept any declared element as document root")
	depth := fs.Int("depth", 0, "extension depth bound for PV-strong recursive DTDs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*dtdPath == "") == (*xsdPath == "") || *root == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pvcheck (-dtd schema.dtd | -xsd schema.xsd) -root elem [flags] doc.xml...")
		fs.PrintDefaults()
		return 2
	}

	opts := pv.Options{
		MaxDepth:             *depth,
		IgnoreWhitespaceText: *ws,
		AllowAnyRoot:         *anyRoot,
	}
	var schema *pv.Schema
	var err error
	if *dtdPath != "" {
		schema, err = pv.CompileDTDFile(*dtdPath, *root, opts)
	} else {
		var data []byte
		data, err = os.ReadFile(*xsdPath)
		if err == nil {
			schema, err = pv.CompileXSD(string(data), *root, opts)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "pvcheck: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "schema: %s\n", schema.Info())

	exit := 0
	fail := func(code int) {
		if exit < code {
			exit = code
		}
	}
	for _, path := range fs.Args() {
		// -stream (or any file past the -stream-at threshold) takes the
		// bounded-memory reader path: the document is checked straight off
		// the file in O(depth + window) memory, never loaded whole — the
		// only way through for documents larger than RAM. The verdict is
		// potential validity only.
		if *stream || streamSized(path, *streamAt) {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "pvcheck: %v\n", err)
				fail(2)
				continue
			}
			err = schema.CheckReader(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stdout, "%s: NOT potentially valid: %v\n", path, err)
				fail(1)
			} else {
				fmt.Fprintf(stdout, "%s: potentially valid\n", path)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck: %v\n", err)
			fail(2)
			continue
		}
		src := string(data)
		res, err := schema.CheckString(src)
		if err != nil {
			fmt.Fprintf(stderr, "pvcheck: %s: %v\n", path, err)
			fail(2)
			continue
		}
		switch {
		case res.Valid:
			fmt.Fprintf(stdout, "%s: valid\n", path)
		case res.PotentiallyValid:
			fmt.Fprintf(stdout, "%s: potentially valid (encoding incomplete)\n", path)
			if *completeFlag {
				doc, err := pv.ParseDocument(src)
				if err == nil {
					if ext, inserted, err := schema.Complete(doc); err == nil {
						fmt.Fprintf(stdout, "%s: completion (+%d elements): %s\n", path, inserted, ext)
					} else {
						fmt.Fprintf(stderr, "pvcheck: %s: completion failed: %v\n", path, err)
					}
				}
			}
		default:
			fmt.Fprintf(stdout, "%s: NOT potentially valid: %s\n", path, res.Detail)
			fail(1)
		}
	}
	return exit
}

// streamSized reports whether path is at or above the auto-streaming
// threshold (negative disables; stat errors defer to the read path, which
// reports them properly).
func streamSized(path string, threshold int64) bool {
	if threshold < 0 {
		return false
	}
	info, err := os.Stat(path)
	return err == nil && info.Size() >= threshold
}

// DTDInfo runs the dtdinfo command: analyze a DTD with the paper's
// machinery. Exit codes: 0 ok, 2 usage or input errors.
func DTDInfo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtdinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "path to the DTD file (required)")
	root := fs.String("root", "", "root element (default: first declared)")
	showDAG := fs.Bool("dag", false, "dump per-element DAGs (Figure 4)")
	showReach := fs.Bool("reach", false, "dump the reachability matrix (Definition 5)")
	showGrammar := fs.Bool("grammar", false, "dump the grammars G(T,r) and G'(T,r) (Section 3)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dtdPath == "" {
		fmt.Fprintln(stderr, "usage: dtdinfo -dtd schema.dtd [flags]")
		fs.PrintDefaults()
		return 2
	}
	data, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintf(stderr, "dtdinfo: %v\n", err)
		return 2
	}
	d, err := dtd.Parse(string(data))
	if err != nil {
		fmt.Fprintf(stderr, "dtdinfo: %v\n", err)
		return 2
	}
	if *root == "" && len(d.Order) > 0 {
		*root = d.Order[0]
	}

	lt := reach.Build(d)
	fmt.Fprintf(stdout, "elements: %d   k (size measure): %d   class: %s\n",
		len(d.Order), d.Size(), lt.Class())
	fmt.Fprintf(stdout, "root: %s\n", *root)
	if rec := lt.RecursiveElements(); len(rec) > 0 {
		fmt.Fprintf(stdout, "recursive elements: %v\n", rec)
	}
	if strong := lt.PVStrongElements(); len(strong) > 0 {
		fmt.Fprintf(stdout, "PV-strong recursive elements: %v\n", strong)
	}
	fmt.Fprintf(stdout, "longest non-star-group chain: %d\n", lt.LongestStrongChain())

	if problems := d.Validate(); len(problems) > 0 {
		fmt.Fprintln(stdout, "\nlint:")
		for _, p := range problems {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}

	usable := lt.Usable(*root)
	var unusable []string
	for _, name := range d.Order {
		if !usable[name] {
			unusable = append(unusable, name)
		}
	}
	if len(unusable) > 0 {
		fmt.Fprintf(stdout, "\nunusable elements (Section 3.3): %v\n", unusable)
	}

	fmt.Fprintln(stdout, "\nper-element analysis:")
	for _, name := range d.Order {
		decl := d.Elements[name]
		fmt.Fprintf(stdout, "  %-12s %-10s class=%-20s pcdata=%-5v",
			name, decl.Category, lt.ElementClass(name), lt.ReachesPCDATA(name))
		if decl.Model != nil {
			norm := contentmodel.FlattenStarGroups(contentmodel.Normalize(decl.Model))
			fmt.Fprintf(stdout, " model=%s  normalized=%s", decl.Model, norm)
			if groups := contentmodel.StarGroups(contentmodel.Normalize(decl.Model)); len(groups) > 0 {
				fmt.Fprintf(stdout, "  star-groups:")
				for _, g := range groups {
					fmt.Fprintf(stdout, " {%v pcdata=%v}", g.Elements, g.HasPCDATA)
				}
			}
		}
		fmt.Fprintln(stdout)
	}

	if *showReach {
		fmt.Fprintln(stdout, "\nreachability (row ⇝ column):")
		fmt.Fprintf(stdout, "%12s", "")
		for _, to := range d.Order {
			fmt.Fprintf(stdout, " %6s", to)
		}
		fmt.Fprintf(stdout, " %6s\n", "PCDATA")
		for _, from := range d.Order {
			fmt.Fprintf(stdout, "%12s", from)
			for _, to := range d.Order {
				mark := "."
				if lt.Reachable(from, to) {
					mark = "x"
				}
				fmt.Fprintf(stdout, " %6s", mark)
			}
			mark := "."
			if lt.ReachesPCDATA(from) {
				mark = "x"
			}
			fmt.Fprintf(stdout, " %6s\n", mark)
		}
	}

	if *showDAG {
		fmt.Fprintln(stdout, "\nDAG model (Section 4.2):")
		g := dag.Build(d)
		for _, name := range d.Order {
			fmt.Fprint(stdout, g.Element(name).Dump())
		}
	}

	if *showGrammar {
		for _, relaxed := range []bool{false, true} {
			g, err := grammar.BuildECFG(d, *root, relaxed)
			if err != nil {
				fmt.Fprintf(stderr, "dtdinfo: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, g.String())
		}
	}
	return 0
}
