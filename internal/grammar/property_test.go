package grammar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// TestPropertyDeltaTWellFormed: δ_T output is balanced (tags nest) and
// never contains two adjacent σ.
func TestPropertyDeltaTWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 6, Class: gen.ClassWeak})
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
		tokens := DeltaT(doc)
		var stack []string
		prevSigma := false
		for _, tok := range tokens {
			switch {
			case tok == SigmaTerminal:
				if prevSigma {
					return false
				}
				prevSigma = true
			case len(tok) > 2 && tok[1] == '/':
				name := tok[2 : len(tok)-1]
				if len(stack) == 0 || stack[len(stack)-1] != name {
					return false
				}
				stack = stack[:len(stack)-1]
				prevSigma = false
			default:
				stack = append(stack, tok[1:len(tok)-1])
				prevSigma = false
			}
		}
		return len(stack) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBigDeltaTPrefix: Δ_T(w) is δ_T of the depth-1 projection —
// its interior tags come in immediately-closed pairs.
func TestPropertyBigDeltaTPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 6, Class: gen.ClassWeak})
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 6})
		tokens := BigDeltaT(doc)
		if len(tokens) < 2 {
			return false
		}
		if tokens[0] != StartTagTerminal(doc.Name) || tokens[len(tokens)-1] != EndTagTerminal(doc.Name) {
			return false
		}
		interior := tokens[1 : len(tokens)-1]
		for i := 0; i < len(interior); i++ {
			tok := interior[i]
			if tok == SigmaTerminal {
				continue
			}
			if tok[1] == '/' {
				return false // end tag without its start immediately before
			}
			name := tok[1 : len(tok)-1]
			if i+1 >= len(interior) || interior[i+1] != EndTagTerminal(name) {
				return false
			}
			i++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGrammarSizes: |rules(G')| = |rules(G)| + m for every DTD.
func TestPropertyGrammarSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: 3 + rng.Intn(10)})
		g, err := BuildECFG(d, "e0", false)
		if err != nil {
			return false
		}
		gp, err := BuildECFG(d, "e0", true)
		if err != nil {
			return false
		}
		return len(gp.Rules) == len(g.Rules)+len(d.Order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCFGLowering: the CFG lowering marks exactly the tag terminals
// and σ as terminals, and every production's symbols are either terminals
// or have productions of their own (no dangling nonterminals).
func TestPropertyCFGLowering(t *testing.T) {
	for _, src := range []string{dtd.Figure1, dtd.Play, dtd.Article, dtd.T1, dtd.T2, dtd.WeakRecursive} {
		d := dtd.MustParse(src)
		g, err := BuildECFG(d, d.Order[0], true)
		if err != nil {
			t.Fatal(err)
		}
		cfg := g.ToCFG()
		for lhs, alts := range cfg.Prods {
			if cfg.IsTerminal(lhs) {
				t.Fatalf("terminal %q has productions", lhs)
			}
			for _, rhs := range alts {
				for _, sym := range rhs {
					if cfg.IsTerminal(sym) {
						continue
					}
					if _, ok := cfg.Prods[sym]; !ok {
						t.Fatalf("dangling nonterminal %q in %q", sym, lhs)
					}
				}
			}
		}
	}
}
