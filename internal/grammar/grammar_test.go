package grammar

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

func TestDeltaTSectionExample(t *testing.T) {
	// The δ_T example at the end of Section 3.1.
	src := `<a><b>A quick brown</b><c> fox jumps over a lazy</c><d> dog<e></e></d></a>`
	root, err := dom.ParseRoot(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "<a><b>σ</b><c>σ</c><d>σ<e></e></d></a>"
	if got := DeltaTString(root); got != want {
		t.Errorf("δ_T = %q, want %q", got, want)
	}
}

func TestBigDeltaTSectionExample(t *testing.T) {
	// The Δ_T example in Section 4: children-only flattening of w's <a>.
	src := `<a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a>`
	root, err := dom.ParseRoot(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "<a><b></b><e></e><c></c>σ</a>"
	if got := BigDeltaTString(root); got != want {
		t.Errorf("Δ_T = %q, want %q", got, want)
	}
}

func TestDeltaTCollapsesAdjacentText(t *testing.T) {
	root, err := dom.ParseRoot(`<a>one<!-- x -->two<b></b>three</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := DeltaTString(root); got != "<a>σ<b></b>σ</a>" {
		t.Errorf("δ_T = %q", got)
	}
}

func TestBuildECFGExample3(t *testing.T) {
	// Example 3 lists G(T,r) for the Figure 1 DTD. We verify the rule set
	// structurally (modulo nonterminal spelling and the paper's F̂ erratum —
	// Figure 1 declares f as (c, e), so F̂ → C, E).
	g, err := BuildECFG(dtd.MustParse(dtd.Figure1), "r", false)
	if err != nil {
		t.Fatal(err)
	}
	text := g.String()
	for _, want := range []string{
		"S -> nt_r",
		"PCDATA -> σ",
		"PCDATA -> ε",
		"nt_r -> <r> hat_r </r>",
		"hat_r -> nt_a+",
		"hat_a -> (nt_b?, (nt_c | nt_f), nt_d)",
		"hat_b -> (nt_d | nt_f)",
		"hat_c -> PCDATA",
		"hat_d -> (PCDATA | nt_e)*",
		"hat_e -> ε",
		"hat_f -> (nt_c, nt_e)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("G(T,r) missing rule %q:\n%s", want, text)
		}
	}
	// G is not relaxed: no tag-omission rules.
	if strings.Contains(text, "nt_a -> hat_a") {
		t.Error("G(T,r) must not contain X -> X̂ rules")
	}
}

func TestBuildRelaxedECFG(t *testing.T) {
	// Section 3.2: G' = G ∪ {X → X̂}.
	g, err := BuildECFG(dtd.MustParse(dtd.Figure1), "r", true)
	if err != nil {
		t.Fatal(err)
	}
	text := g.String()
	for _, x := range []string{"r", "a", "b", "c", "d", "e", "f"} {
		want := "nt_" + x + " -> hat_" + x
		if !strings.Contains(text, want) {
			t.Errorf("G'(T,r) missing relaxation rule %q", want)
		}
	}
	// |Rules(G')| = |Rules(G)| + m.
	plain, _ := BuildECFG(dtd.MustParse(dtd.Figure1), "r", false)
	if len(g.Rules) != len(plain.Rules)+7 {
		t.Errorf("rule counts: G'=%d, G=%d", len(g.Rules), len(plain.Rules))
	}
}

func TestECFGSets(t *testing.T) {
	g, _ := BuildECFG(dtd.MustParse(dtd.Figure1), "r", true)
	// N = {S, PCDATA} ∪ {X, X̂ | x ∈ T}: 2 + 2·7 = 16.
	if got := len(g.Nonterminals()); got != 16 {
		t.Errorf("|N| = %d, want 16", got)
	}
	// Σ = {σ} ∪ {<x>, </x> | x ∈ T}: 1 + 2·7 = 15.
	if got := len(g.Terminals()); got != 15 {
		t.Errorf("|Σ| = %d, want 15", got)
	}
}

func TestBuildECFGBadRoot(t *testing.T) {
	if _, err := BuildECFG(dtd.MustParse(dtd.Figure1), "nope", true); err == nil {
		t.Error("expected error for undeclared root")
	}
}

func TestANYExpansion(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a ANY> <!ELEMENT b EMPTY>`)
	g, err := BuildECFG(d, "a", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "hat_a -> (nt_a | nt_b | PCDATA)*") {
		t.Errorf("ANY transcription wrong:\n%s", g)
	}
}

func TestToCFGTerminalsAndStart(t *testing.T) {
	g, _ := BuildECFG(dtd.MustParse(dtd.Figure1), "r", true)
	cfg := g.ToCFG()
	if cfg.Start != "S" {
		t.Errorf("start = %q", cfg.Start)
	}
	for _, term := range []string{"σ", "<r>", "</r>", "<f>", "</f>"} {
		if !cfg.IsTerminal(term) {
			t.Errorf("%q should be terminal", term)
		}
	}
	if cfg.IsTerminal("nt_r") || cfg.IsTerminal("hat_a") {
		t.Error("nonterminals marked terminal")
	}
	if cfg.ProductionCount() == 0 {
		t.Error("no productions")
	}
}
