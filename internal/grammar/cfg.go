package grammar

import (
	"fmt"

	"repro/internal/contentmodel"
	"repro/internal/dtd"
)

// CFG is a plain context-free grammar over string symbols, produced by
// decomposing the ECFG's regular right-hand sides with fresh nonterminals.
// It is the input format of the Earley baseline (internal/earley).
type CFG struct {
	Start string
	// Prods maps a nonterminal to its alternative right-hand sides; an
	// empty RHS slice element means ε.
	Prods map[string][][]string
	// terminal marks which symbols are terminals.
	terminal map[string]bool
}

// IsTerminal reports whether sym is a terminal of the grammar.
func (g *CFG) IsTerminal(sym string) bool { return g.terminal[sym] }

// ProductionCount returns the total number of productions.
func (g *CFG) ProductionCount() int {
	n := 0
	for _, alts := range g.Prods {
		n += len(alts)
	}
	return n
}

// cfgBuilder decomposes regular expressions into CFG productions.
type cfgBuilder struct {
	g     *CFG
	fresh int
}

func (b *cfgBuilder) add(lhs string, rhs ...string) {
	b.g.Prods[lhs] = append(b.g.Prods[lhs], rhs)
}

func (b *cfgBuilder) freshNT(hint string) string {
	b.fresh++
	return fmt.Sprintf("%s#%d", hint, b.fresh)
}

// expr compiles a content-model expression to a single grammar symbol that
// derives exactly the expression's language (over element nonterminals and
// PCDATA).
func (b *cfgBuilder) expr(e *contentmodel.Expr, hint string) string {
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return "PCDATA"
	case contentmodel.KindName:
		return ntName(e.Name)
	case contentmodel.KindSeq:
		nt := b.freshNT(hint)
		rhs := make([]string, len(e.Children))
		for i, c := range e.Children {
			rhs[i] = b.expr(c, hint)
		}
		b.add(nt, rhs...)
		return nt
	case contentmodel.KindChoice:
		nt := b.freshNT(hint)
		for _, c := range e.Children {
			b.add(nt, b.expr(c, hint))
		}
		return nt
	case contentmodel.KindStar:
		nt := b.freshNT(hint)
		inner := b.expr(e.Children[0], hint)
		b.add(nt)            // ε
		b.add(nt, inner, nt) // right recursion
		return nt
	case contentmodel.KindPlus:
		nt := b.freshNT(hint)
		inner := b.expr(e.Children[0], hint)
		star := b.freshNT(hint)
		b.add(star)
		b.add(star, inner, star)
		b.add(nt, inner, star)
		return nt
	case contentmodel.KindOpt:
		nt := b.freshNT(hint)
		b.add(nt)
		b.add(nt, b.expr(e.Children[0], hint))
		return nt
	}
	panic(fmt.Sprintf("grammar: unknown kind %v", e.Kind))
}

// ToCFG lowers the ECFG to a plain CFG by introducing fresh nonterminals
// for sequence, choice and repetition structure. The CFG recognizes exactly
// δ_T images: L(CFG) = L(G) (or L(G') when the ECFG is relaxed).
func (g *ECFG) ToCFG() *CFG {
	cfg := &CFG{
		Start:    "S",
		Prods:    map[string][][]string{},
		terminal: map[string]bool{SigmaTerminal: true},
	}
	b := &cfgBuilder{g: cfg}
	d := g.DTD
	for _, x := range d.Order {
		cfg.terminal[StartTagTerminal(x)] = true
		cfg.terminal[EndTagTerminal(x)] = true
	}
	b.add("S", ntName(g.Root))
	b.add("PCDATA", SigmaTerminal)
	b.add("PCDATA") // ε
	for _, x := range d.Order {
		decl := d.Elements[x]
		hat := hatName(x)
		b.add(ntName(x), StartTagTerminal(x), hat, EndTagTerminal(x))
		if g.Relaxed {
			b.add(ntName(x), hat)
		}
		switch decl.Category {
		case dtd.Empty:
			b.add(hat) // ε
		case dtd.Any:
			// hat -> ε | item hat ; item -> any element | PCDATA
			item := b.freshNT(hat)
			for _, z := range d.Order {
				b.add(item, ntName(z))
			}
			b.add(item, "PCDATA")
			b.add(hat)
			b.add(hat, item, hat)
		default:
			b.add(hat, b.expr(decl.Model, hat))
		}
	}
	return cfg
}
