// Package grammar implements Section 3 of the paper: the extended
// context-free grammar G(T,r) for checking validity, its relaxation
// G'(T,r) for checking potential validity (adding X → X̂ for every element
// x, so that start/end tags may be omitted), the flattening operators δ_T
// and Δ_T, and an export of both grammars to plain context-free form for
// the Earley baseline.
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// Terminal symbols of Σ: for each element x the start tag "<x>" and end tag
// "</x>", plus the character-data terminal σ.
const (
	// SigmaTerminal is the terminal σ: a non-empty character data string.
	SigmaTerminal = "σ"
)

// StartTagTerminal returns the terminal for <x>.
func StartTagTerminal(x string) string { return "<" + x + ">" }

// EndTagTerminal returns the terminal for </x>.
func EndTagTerminal(x string) string { return "</" + x + ">" }

// DeltaT implements the δ_T operator on a DOM subtree: the full document
// flattened to a terminal string over Σ, with every maximal run of
// character data replaced by a single σ while the markup structure is
// preserved.
func DeltaT(n *dom.Node) []string {
	var out []string
	var visit func(n *dom.Node)
	visit = func(n *dom.Node) {
		switch n.Kind {
		case dom.TextNode:
			if n.Data == "" {
				return
			}
			if len(out) > 0 && out[len(out)-1] == SigmaTerminal {
				return // consecutive character data collapses
			}
			out = append(out, SigmaTerminal)
		case dom.ElementNode:
			out = append(out, StartTagTerminal(n.Name))
			for _, c := range n.Children {
				visit(c)
			}
			out = append(out, EndTagTerminal(n.Name))
		}
		// comments and PIs vanish under δ_T
	}
	visit(n)
	return out
}

// DeltaTString renders δ_T(w) in the paper's concatenated notation, e.g.
// "<a><b>σ</b><c>σ</c><d>σ<e></e></d></a>".
func DeltaTString(n *dom.Node) string { return strings.Join(DeltaT(n), "") }

// BigDeltaT implements the Δ_T operator: the subtree rooted at n flattened
// with all descendants below the children removed — i.e. the root's tags
// around the sequence of its children's tag pairs and σ runs.
func BigDeltaT(n *dom.Node) []string {
	out := []string{StartTagTerminal(n.Name)}
	lastSigma := false
	for _, c := range n.Children {
		switch c.Kind {
		case dom.ElementNode:
			out = append(out, StartTagTerminal(c.Name), EndTagTerminal(c.Name))
			lastSigma = false
		case dom.TextNode:
			if c.Data == "" || lastSigma {
				continue
			}
			out = append(out, SigmaTerminal)
			lastSigma = true
		}
	}
	return append(out, EndTagTerminal(n.Name))
}

// BigDeltaTString renders Δ_T(w) in concatenated notation, e.g.
// "<a><b></b><e></e><c></c>σ</a>" (the paper's Section 4 example).
func BigDeltaTString(n *dom.Node) string { return strings.Join(BigDeltaT(n), "") }

// Rule is one production of the (extended) grammar, rendered with the
// right-hand side as a regular expression string for display, plus the raw
// content-model expression when the RHS comes from a DTD rule.
type Rule struct {
	LHS string
	// RHS is the display form of the right-hand side.
	RHS string
	// Model is the content-model expression behind an X̂ → r_X rule; nil
	// for the structural rules.
	Model *contentmodel.Expr
}

func (r Rule) String() string { return r.LHS + " -> " + r.RHS }

// ECFG is the extended context-free grammar G(T,r) of Section 3.1, or its
// relaxation G'(T,r) of Section 3.2 when Relaxed is set.
type ECFG struct {
	DTD     *dtd.DTD
	Root    string
	Relaxed bool
	Rules   []Rule
}

// hatName returns the paper's X̂ nonterminal name for element x.
func hatName(x string) string { return "hat_" + x }

// ntName returns the paper's X nonterminal name for element x.
func ntName(x string) string { return "nt_" + x }

// BuildECFG constructs G(T,r) (relaxed=false) or G'(T,r) (relaxed=true).
// The rule list is in the paper's presentation order: S → R, the PCDATA
// rules, then per element the tag rule X → <x> X̂ </x>, the optional
// relaxation X → X̂, and the content rule X̂ → r_X.
func BuildECFG(d *dtd.DTD, root string, relaxed bool) (*ECFG, error) {
	if _, ok := d.Elements[root]; !ok {
		return nil, fmt.Errorf("grammar: root element %q is not declared", root)
	}
	g := &ECFG{DTD: d, Root: root, Relaxed: relaxed}
	g.Rules = append(g.Rules,
		Rule{LHS: "S", RHS: ntName(root)},
		Rule{LHS: "PCDATA", RHS: SigmaTerminal},
		Rule{LHS: "PCDATA", RHS: "ε"},
	)
	for _, x := range d.Order {
		decl := d.Elements[x]
		g.Rules = append(g.Rules, Rule{
			LHS: ntName(x),
			RHS: StartTagTerminal(x) + " " + hatName(x) + " " + EndTagTerminal(x),
		})
		if relaxed {
			// The Section 3.2 relaxation: tags may be omitted.
			g.Rules = append(g.Rules, Rule{LHS: ntName(x), RHS: hatName(x)})
		}
		g.Rules = append(g.Rules, contentRule(d, x, decl))
	}
	return g, nil
}

// contentRule builds X̂ → r_X, transcribing the content model with every
// element y replaced by its nonterminal Y (Section 3.1); ANY expands to
// (Z1 | ... | Zn | PCDATA)* over all declared elements.
func contentRule(d *dtd.DTD, x string, decl *dtd.ElementDecl) Rule {
	switch decl.Category {
	case dtd.Empty:
		return Rule{LHS: hatName(x), RHS: "ε"}
	case dtd.Any:
		parts := make([]string, 0, len(d.Order)+1)
		for _, z := range d.Order {
			parts = append(parts, ntName(z))
		}
		parts = append(parts, "PCDATA")
		return Rule{LHS: hatName(x), RHS: "(" + strings.Join(parts, " | ") + ")*"}
	default:
		return Rule{LHS: hatName(x), RHS: transcribe(decl.Model), Model: decl.Model}
	}
}

// transcribe renders a content model with nonterminal names substituted.
func transcribe(e *contentmodel.Expr) string {
	switch e.Kind {
	case contentmodel.KindPCDATA:
		return "PCDATA"
	case contentmodel.KindName:
		return ntName(e.Name)
	case contentmodel.KindSeq, contentmodel.KindChoice:
		sep := ", "
		if e.Kind == contentmodel.KindChoice {
			sep = " | "
		}
		parts := make([]string, len(e.Children))
		for i, c := range e.Children {
			parts[i] = transcribe(c)
		}
		return "(" + strings.Join(parts, sep) + ")"
	case contentmodel.KindStar:
		return transcribe(e.Children[0]) + "*"
	case contentmodel.KindPlus:
		return transcribe(e.Children[0]) + "+"
	case contentmodel.KindOpt:
		return transcribe(e.Children[0]) + "?"
	}
	return "?"
}

// String renders the grammar, one rule per line, for display and tests.
func (g *ECFG) String() string {
	var b strings.Builder
	kind := "G"
	if g.Relaxed {
		kind = "G'"
	}
	fmt.Fprintf(&b, "%s(T, %s):\n", kind, g.Root)
	for _, r := range g.Rules {
		b.WriteString("  ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Nonterminals returns the sorted nonterminal set N of the grammar:
// S, PCDATA, and X, X̂ for every element (Section 3.1).
func (g *ECFG) Nonterminals() []string {
	out := []string{"S", "PCDATA"}
	for _, x := range g.DTD.Order {
		out = append(out, ntName(x), hatName(x))
	}
	sort.Strings(out)
	return out
}

// Terminals returns the sorted terminal set Σ: σ plus tag terminals.
func (g *ECFG) Terminals() []string {
	out := []string{SigmaTerminal}
	for _, x := range g.DTD.Order {
		out = append(out, StartTagTerminal(x), EndTagTerminal(x))
	}
	sort.Strings(out)
	return out
}
