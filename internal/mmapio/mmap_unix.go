//go:build unix

package mmapio

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only and privately. The release closure
// unmaps; double-unmapping is guarded so a sloppy caller cannot corrupt a
// later mapping at the same address.
func mmap(f *os.File, size int64) ([]byte, func(), error) {
	if size <= 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("mmapio: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	released := false
	return data, func() {
		if !released {
			released = true
			_ = syscall.Munmap(data)
		}
	}, nil
}
