//go:build !unix

package mmapio

import (
	"fmt"
	"os"
)

// mmap is unsupported on this platform; ReadFile falls back to a plain
// read.
func mmap(*os.File, int64) ([]byte, func(), error) {
	return nil, nil, fmt.Errorf("mmapio: memory mapping not supported on this platform")
}
