// Package mmapio reads files for the zero-copy byte-path checkers,
// memory-mapping large files instead of copying them through the page
// cache twice. Small files (and platforms without mmap support) fall back
// to a plain read; callers get the same []byte either way plus a release
// function that unmaps or no-ops. The engine's byte path never retains
// document bytes past a check, so releasing after the batch returns is
// safe.
package mmapio

import (
	"io"
	"os"
)

// DefaultThreshold is the size, in bytes, at or above which ReadFile
// memory-maps instead of reading. One MiB keeps small-document workloads
// on the cheap read path (mmap + fault + munmap costs more than a small
// read) while large corpora stream straight off the page cache.
const DefaultThreshold = 1 << 20

// ReadFile returns the file's contents, memory-mapped when the file size
// is at least threshold bytes (threshold <= 0 selects DefaultThreshold;
// mapping failures and unsupported platforms silently fall back to a plain
// read). The returned release function must be called once the bytes are
// no longer referenced; it unmaps mapped data and is a no-op otherwise.
// mapped reports which path was taken (for tests and stats).
func ReadFile(path string, threshold int64) (data []byte, release func(), mapped bool, err error) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	noop := func() {}
	f, err := os.Open(path)
	if err != nil {
		return nil, noop, false, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, noop, false, err
	}
	if info.Size() >= threshold {
		if data, release, err := mmap(f, info.Size()); err == nil {
			return data, release, true, nil
		}
		// Fall through to the plain read: a mapping failure (exotic
		// filesystem, resource limits) must not fail the check.
	}
	// Plain read from the already-open file: one open+stat per file, and
	// the size decision and the bytes come from the same file object.
	data = make([]byte, info.Size())
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, noop, false, err
	}
	return data, noop, false, nil
}
