package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadFileBothPaths covers the mmap path and the plain-read fallback
// with the same content, driven by the threshold.
func TestReadFileBothPaths(t *testing.T) {
	dir := t.TempDir()
	content := []byte("<doc>" + strings.Repeat("payload ", 1000) + "</doc>")
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	// Threshold above the file size: plain read.
	data, release, mapped, err := ReadFile(path, int64(len(content))+1)
	if err != nil || mapped {
		t.Fatalf("plain path: mapped=%v err=%v", mapped, err)
	}
	if !bytes.Equal(data, content) {
		t.Fatal("plain path: content mismatch")
	}
	release()

	// Threshold at the file size: mmap (on supported platforms).
	data, release, mapped, err = ReadFile(path, int64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, content) {
		t.Fatal("mapped path: content mismatch")
	}
	if !mapped {
		t.Log("mmap unsupported on this platform; fallback exercised instead")
	}
	release()
	release() // double release must be safe
}

// TestReadFileEmptyAndMissing pins the edge cases: empty files never map
// (zero-length mappings are invalid) and missing files error.
func TestReadFileEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.xml")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	data, release, mapped, err := ReadFile(empty, 0) // 0 selects the default threshold
	if err != nil || mapped || len(data) != 0 {
		t.Fatalf("empty file: data=%d mapped=%v err=%v", len(data), mapped, err)
	}
	release()

	if _, _, _, err := ReadFile(filepath.Join(dir, "missing.xml"), 0); err == nil {
		t.Fatal("missing file must error")
	}
}
