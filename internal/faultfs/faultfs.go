// Package faultfs is the filesystem seam under the engine's durable tier
// (the job WAL, the compiled-schema disk cache, the receipt anchor log):
// a small FS interface with a passthrough OS implementation for
// production and a fault-injecting simulator for crash-consistency
// testing.
//
// The durable packages take an FS at construction and default to OS, so
// production behavior is byte-for-byte the standard library's. Tests swap
// in a FaultFS, which models exactly the failure surface a local
// filesystem exposes to an append-heavy store:
//
//   - process/power loss at an arbitrary operation: only bytes explicitly
//     fsynced survive, the unsynced suffix of a file is torn at byte
//     granularity, and directory entries (creates, renames, removes) that
//     were never made durable by a directory fsync may be lost;
//   - ENOSPC and short writes mid-record;
//   - one-shot or persistent Sync/Rename failures.
//
// Every operation is counted and traced, and every nondeterministic
// choice (torn-tail length, which unsynced directory entries survive)
// derives from a caller-provided seed, so any failing crash point replays
// deterministically from a one-line (seed, op-index) repro. The
// crash-matrix driver that enumerates every op index of a workload lives
// in the harness subpackage.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
)

// FS is the filesystem surface the durable tier uses. It is deliberately
// small: exactly the operations the job WAL, schema cache and anchor log
// perform, no more. All implementations are safe for concurrent use.
type FS interface {
	// Open opens the named file for reading. Opening a directory returns a
	// handle whose Sync makes the directory's entries durable (the
	// fsync-the-parent-after-rename idiom).
	Open(name string) (File, error)
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// OpenFile is the generalized open; it honors the os.O_* flags the
	// durable tier uses (CREATE, RDWR, WRONLY, APPEND, TRUNC, EXCL).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new unique file in dir whose name is built from
	// pattern (a single '*' is replaced, or a suffix appended), opened for
	// writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath. Durability of the new
	// entry requires a subsequent parent-directory sync (see SyncDir).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file or empty directory.
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists the named directory, sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// TryLock takes the single-writer advisory lock on the named lock file
	// (creating it if needed), failing with ErrLocked while another live
	// holder exists. Closing the returned handle — or the holder's death —
	// releases it.
	TryLock(name string) (io.Closer, error)
}

// File is the open-file surface the durable tier uses: sequential reads
// and writes, explicit durability, truncation for torn-tail repair.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened as.
	Name() string
	// Sync flushes the file's bytes to durable storage. On a directory
	// handle it makes the entry set durable instead.
	Sync() error
	// Truncate changes the file's size (the torn-tail repair path).
	Truncate(size int64) error
}

// ErrCrashed is returned by every operation of a FaultFS whose simulated
// process has crashed (at its planned op index or via Crash). It marks
// the point past which the workload under test is "dead"; Recover turns
// the filesystem into the durable post-crash image a fresh process would
// see.
var ErrCrashed = errors.New("faultfs: simulated process crash")

// ErrLocked reports that TryLock found another live holder.
var ErrLocked = errors.New("faultfs: lock is held by another process")

// SyncDir fsyncs the named directory, making its entries (file creates,
// renames, removes) durable. This is the half of the atomic
// write-tmp-then-rename idiom that is easy to forget: without it a crash
// can lose the rename itself even though the file's bytes were synced.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// SyncDirs fsyncs each named directory in order, stopping at the first
// failure. Creating a directory tree durably requires syncing every
// parent whose entry set changed — callers list them innermost-last.
func SyncDirs(fsys FS, dirs ...string) error {
	for _, dir := range dirs {
		if err := SyncDir(fsys, dir); err != nil {
			return err
		}
	}
	return nil
}
