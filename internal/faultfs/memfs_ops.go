package faultfs

import (
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path"
	"sort"
	"strings"
	"syscall"
	"time"
)

// This file implements the FS and File surfaces of FaultFS. Every method
// draws one op index under f.mu (beginOp), which is where the planned
// crash and the op trace live; injector checks (ENOSPC, sync/rename
// failures) follow per method.

// Open opens a file for reading, or a directory for ReadDir-less syncing
// (the fsync-the-parent idiom).
func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("open", name)
	if err != nil {
		return nil, err
	}
	node, err := f.lookup(name)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	switch n := node.(type) {
	case *memDir:
		return &memHandle{f: f, dir: n, name: name, epoch: f.epoch, readable: true}, nil
	case *memFile:
		return &memHandle{f: f, file: n, name: name, epoch: f.epoch, readable: true}, nil
	}
	panic("faultfs: unknown node type")
}

// Create creates or truncates the named file for writing.
func (f *FaultFS) Create(name string) (File, error) {
	return f.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenFile is the generalized open; the parent directory must exist.
func (f *FaultFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("openfile", name)
	if err != nil {
		return nil, err
	}
	file, err := f.openFileLocked(name, flag)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	h := &memHandle{f: f, file: file, name: name, epoch: f.epoch,
		appendMode: flag&os.O_APPEND != 0,
		readable:   flag&os.O_WRONLY == 0,
		writable:   flag&(os.O_WRONLY|os.O_RDWR) != 0,
	}
	return h, nil
}

// openFileLocked resolves or creates the file node for OpenFile.
func (f *FaultFS) openFileLocked(name string, flag int) (*memFile, error) {
	parent, base, err := f.lookupDir(name)
	if err != nil {
		return nil, err
	}
	node, ok := parent.entries[base]
	if ok {
		if flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
		}
		file, isFile := node.(*memFile)
		if !isFile {
			return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.EISDIR}
		}
		if flag&os.O_TRUNC != 0 {
			file.data = nil
		}
		return file, nil
	}
	if flag&os.O_CREATE == 0 {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	// A new file is a directory mutation: the entry is volatile until the
	// parent directory is synced.
	file := &memFile{}
	parent.entries[base] = file
	return file, nil
}

// CreateTemp creates a uniquely named file in dir from pattern, opened
// read-write. Names derive from a deterministic sequence, not the clock.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("createtemp", path.Join(dir, pattern))
	if err != nil {
		return nil, err
	}
	parent, err := f.lookup(dir)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	d, ok := parent.(*memDir)
	if !ok {
		err := &fs.PathError{Op: "createtemp", Path: dir, Err: syscall.ENOTDIR}
		rec.Err = err.Error()
		return nil, err
	}
	prefix, suffix, hasStar := strings.Cut(pattern, "*")
	for {
		f.tmpSeq++
		name := prefix + itoa(f.tmpSeq)
		if hasStar {
			name += suffix
		}
		if _, exists := d.entries[name]; exists {
			continue
		}
		file := &memFile{}
		d.entries[name] = file
		full := path.Join(dir, name)
		rec.Path = full
		return &memHandle{f: f, file: file, name: full, epoch: f.epoch, readable: true, writable: true}, nil
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Rename moves oldpath to newpath, replacing any existing file. The new
// entry (and the old one's absence) is volatile until the parent
// directories are synced.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("rename", oldpath)
	if err != nil {
		return err
	}
	if err := f.checkRenameFault(rec.Index); err != nil {
		rec.Err = err.Error()
		return err
	}
	oldParent, oldBase, err := f.lookupDir(oldpath)
	if err != nil {
		rec.Err = err.Error()
		return err
	}
	node, ok := oldParent.entries[oldBase]
	if !ok {
		err := &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
		rec.Err = err.Error()
		return err
	}
	newParent, newBase, err := f.lookupDir(newpath)
	if err != nil {
		rec.Err = err.Error()
		return err
	}
	newParent.entries[newBase] = node
	delete(oldParent.entries, oldBase)
	return nil
}

// checkRenameFault applies the planned rename failure. Called with f.mu
// held.
func (f *FaultFS) checkRenameFault(idx int64) error {
	if f.plan.FailRenameAtOp < 0 || idx < f.plan.FailRenameAtOp || f.renameFailDone {
		return nil
	}
	if !f.plan.FailRenameSticky {
		f.renameFailDone = true
	}
	return &fs.PathError{Op: "rename", Path: "", Err: syscall.EIO}
}

// Remove deletes the named file or empty directory; the disappearance is
// volatile until the parent directory is synced.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("remove", name)
	if err != nil {
		return err
	}
	parent, base, err := f.lookupDir(name)
	if err != nil {
		rec.Err = err.Error()
		return err
	}
	node, ok := parent.entries[base]
	if !ok {
		err := &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
		rec.Err = err.Error()
		return err
	}
	if d, isDir := node.(*memDir); isDir && len(d.entries) > 0 {
		err := &fs.PathError{Op: "remove", Path: name, Err: syscall.ENOTEMPTY}
		rec.Err = err.Error()
		return err
	}
	delete(parent.entries, base)
	return nil
}

// MkdirAll creates the named directory and missing parents; each created
// entry is volatile until its parent is synced.
func (f *FaultFS) MkdirAll(p string, _ fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("mkdirall", p)
	if err != nil {
		return err
	}
	d := f.root
	for _, e := range split(p) {
		node, ok := d.entries[e]
		if !ok {
			nd := newMemDir()
			d.entries[e] = nd
			d = nd
			continue
		}
		nd, isDir := node.(*memDir)
		if !isDir {
			err := &fs.PathError{Op: "mkdir", Path: p, Err: syscall.ENOTDIR}
			rec.Err = err.Error()
			return err
		}
		d = nd
	}
	return nil
}

// ReadDir lists the named directory sorted by name.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("readdir", name)
	if err != nil {
		return nil, err
	}
	node, err := f.lookup(name)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	d, ok := node.(*memDir)
	if !ok {
		err := &fs.PathError{Op: "readdir", Path: name, Err: syscall.ENOTDIR}
		rec.Err = err.Error()
		return nil, err
	}
	names := make([]string, 0, len(d.entries))
	for n := range d.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		out = append(out, dirEntry{name: n, node: d.entries[n]})
	}
	return out, nil
}

// Stat describes the named file or directory.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("stat", name)
	if err != nil {
		return nil, err
	}
	node, err := f.lookup(name)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	return infoFor(path.Base(name), node), nil
}

// ReadFile reads the whole named file (counted as a single op).
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("readfile", name)
	if err != nil {
		return nil, err
	}
	node, err := f.lookup(name)
	if err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	file, ok := node.(*memFile)
	if !ok {
		err := &fs.PathError{Op: "read", Path: name, Err: syscall.EISDIR}
		rec.Err = err.Error()
		return nil, err
	}
	rec.N = len(file.data)
	return cloneBytes(file.data), nil
}

// TryLock takes the simulated single-writer lock on name. Locks die with
// the epoch: a crash releases them exactly as process death drops flocks.
func (f *FaultFS) TryLock(name string) (io.Closer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, err := f.beginOp("lock", name)
	if err != nil {
		return nil, err
	}
	if _, err := f.openFileLocked(name, os.O_CREATE|os.O_RDWR); err != nil {
		rec.Err = err.Error()
		return nil, err
	}
	if epoch, held := f.locks[name]; held && epoch == f.epoch {
		rec.Err = ErrLocked.Error()
		return nil, ErrLocked
	}
	f.locks[name] = f.epoch
	return &memLock{f: f, name: name, epoch: f.epoch}, nil
}

// memLock is a held TryLock; Close releases it if its holder is still the
// current epoch.
type memLock struct {
	f     *FaultFS
	name  string
	epoch int
}

// Close releases the lock.
func (l *memLock) Close() error {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	if epoch, held := l.f.locks[l.name]; held && epoch == l.epoch {
		delete(l.f.locks, l.name)
	}
	return nil
}

// ---- the File handle ----

// memHandle is one open file or directory handle. Handles belong to an
// epoch; Recover bumps the epoch, so a handle held across a simulated
// crash fails every operation (the process that owned it is dead).
type memHandle struct {
	f          *FaultFS
	file       *memFile // nil for directory handles
	dir        *memDir  // nil for file handles
	name       string
	off        int64
	epoch      int
	closed     bool
	appendMode bool
	readable   bool
	writable   bool
}

// Name returns the path the handle was opened as.
func (h *memHandle) Name() string { return h.name }

// checkLocked validates the handle under f.mu.
func (h *memHandle) checkLocked() error {
	if h.closed {
		return fs.ErrClosed
	}
	if h.epoch != h.f.epoch {
		return ErrCrashed
	}
	return nil
}

// Write appends or overwrites at the handle offset; the bytes land in the
// page-cache view only (durability requires Sync). The planned ENOSPC
// injector fires here, optionally landing a short prefix first.
func (h *memHandle) Write(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("write", h.name)
	if err != nil {
		return 0, err
	}
	if err := h.checkLocked(); err != nil {
		rec.Err = err.Error()
		return 0, err
	}
	if !h.writable {
		err := &fs.PathError{Op: "write", Path: h.name, Err: syscall.EBADF}
		rec.Err = err.Error()
		return 0, err
	}
	n := len(p)
	var werr error
	if h.f.enospcTriggered(rec.Index) {
		n = 0
		if h.f.plan.ShortWrites && len(p) > 0 {
			n = rand.New(rand.NewSource(mix(h.f.plan.Seed, rec.Index))).Intn(len(p))
		}
		werr = &fs.PathError{Op: "write", Path: h.name, Err: syscall.ENOSPC}
		rec.Err = werr.Error()
	}
	if h.appendMode {
		h.off = int64(len(h.file.data))
	}
	end := h.off + int64(n)
	if int64(len(h.file.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.file.data)
		h.file.data = grown
	}
	copy(h.file.data[h.off:end], p[:n])
	h.off = end
	rec.N = n
	return n, werr
}

// enospcTriggered applies the planned ENOSPC injector. Called with f.mu
// held.
func (f *FaultFS) enospcTriggered(idx int64) bool {
	if f.plan.ENOSPCAtOp < 0 || idx < f.plan.ENOSPCAtOp || f.enospcDone {
		return false
	}
	if !f.plan.ENOSPCSticky {
		f.enospcDone = true
	}
	return true
}

// Read reads from the handle offset.
func (h *memHandle) Read(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("read", h.name)
	if err != nil {
		return 0, err
	}
	if err := h.checkLocked(); err != nil {
		rec.Err = err.Error()
		return 0, err
	}
	if h.file == nil {
		err := &fs.PathError{Op: "read", Path: h.name, Err: syscall.EISDIR}
		rec.Err = err.Error()
		return 0, err
	}
	if h.off >= int64(len(h.file.data)) {
		rec.Err = io.EOF.Error()
		return 0, io.EOF
	}
	n := copy(p, h.file.data[h.off:])
	h.off += int64(n)
	rec.N = n
	return n, nil
}

// Seek repositions the handle offset.
func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("seek", h.name)
	if err != nil {
		return 0, err
	}
	if err := h.checkLocked(); err != nil {
		rec.Err = err.Error()
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.off
	case io.SeekEnd:
		base = int64(len(h.file.data))
	default:
		return 0, &fs.PathError{Op: "seek", Path: h.name, Err: fs.ErrInvalid}
	}
	if base+offset < 0 {
		return 0, &fs.PathError{Op: "seek", Path: h.name, Err: fs.ErrInvalid}
	}
	h.off = base + offset
	return h.off, nil
}

// Sync makes the file's bytes (or a directory's entry set) durable. The
// planned sync-failure injector fires here; a failed sync leaves
// durability untouched.
func (h *memHandle) Sync() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("sync", h.name)
	if err != nil {
		return err
	}
	if err := h.checkLocked(); err != nil {
		rec.Err = err.Error()
		return err
	}
	if f := h.f; f.plan.FailSyncAtOp >= 0 && rec.Index >= f.plan.FailSyncAtOp && !f.syncFailDone {
		if !f.plan.FailSyncSticky {
			f.syncFailDone = true
		}
		err := &fs.PathError{Op: "sync", Path: h.name, Err: syscall.EIO}
		rec.Err = err.Error()
		return err
	}
	if h.dir != nil {
		h.dir.durable = cloneEntries(h.dir.entries)
	} else {
		h.file.durable = cloneBytes(h.file.data)
	}
	return nil
}

// Truncate resizes the file; like writes, the change is volatile until
// the next Sync.
func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("truncate", h.name)
	if err != nil {
		return err
	}
	if err := h.checkLocked(); err != nil {
		rec.Err = err.Error()
		return err
	}
	if h.file == nil {
		err := &fs.PathError{Op: "truncate", Path: h.name, Err: syscall.EISDIR}
		rec.Err = err.Error()
		return err
	}
	switch {
	case size < 0:
		return &fs.PathError{Op: "truncate", Path: h.name, Err: fs.ErrInvalid}
	case size <= int64(len(h.file.data)):
		h.file.data = cloneBytes(h.file.data[:size])
	default:
		grown := make([]byte, size)
		copy(grown, h.file.data)
		h.file.data = grown
	}
	return nil
}

// Close releases the handle. A crash between a write and its sync is the
// torn-tail case — Close alone never makes bytes durable.
func (h *memHandle) Close() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	rec, err := h.f.beginOp("close", h.name)
	if err != nil {
		return err
	}
	if h.closed {
		rec.Err = fs.ErrClosed.Error()
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// ---- fs.DirEntry / fs.FileInfo ----

// dirEntry adapts one directory entry to fs.DirEntry.
type dirEntry struct {
	name string
	node any
}

func (e dirEntry) Name() string { return e.name }

func (e dirEntry) IsDir() bool { _, ok := e.node.(*memDir); return ok }

func (e dirEntry) Type() fs.FileMode {
	if e.IsDir() {
		return fs.ModeDir
	}
	return 0
}

func (e dirEntry) Info() (fs.FileInfo, error) { return infoFor(e.name, e.node), nil }

// fileInfo is the minimal fs.FileInfo for simulated nodes; mod times are
// not modeled (the simulator has no clock, by design — determinism).
type fileInfo struct {
	name  string
	size  int64
	isDir bool
}

func infoFor(name string, node any) fileInfo {
	fi := fileInfo{name: name}
	switch n := node.(type) {
	case *memDir:
		fi.isDir = true
	case *memFile:
		fi.size = int64(len(n.data))
	}
	return fi
}

func (i fileInfo) Name() string { return i.name }
func (i fileInfo) Size() int64  { return i.size }
func (i fileInfo) Mode() fs.FileMode {
	if i.isDir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i fileInfo) ModTime() time.Time { return time.Time{} }
func (i fileInfo) IsDir() bool        { return i.isDir }
func (i fileInfo) Sys() any           { return nil }
