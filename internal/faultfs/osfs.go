package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// OS is the production filesystem: every call passes straight through to
// the standard library (an *os.File already satisfies File). The durable
// packages default to it, so threading the seam changes nothing outside
// tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }

// TryLock takes an exclusive flock on the named file. The lock is
// advisory between cooperating processes and held until the returned
// handle is closed; the kernel drops flocks with their last open
// descriptor, so a SIGKILLed holder never blocks its successor.
func (osFS) TryLock(name string) (io.Closer, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("faultfs: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, name)
	}
	return f, nil
}
