// Package harness is the crash-matrix driver over faultfs: it runs a
// workload once to count its filesystem operations, then re-runs it from
// scratch once per operation index with a simulated crash planted there,
// recovers the durable image, and asserts the caller's invariants against
// it. Every failure prints a one-line repro command carrying the seed and
// op index, and the -faultfs.seed / -faultfs.crash test flags replay
// exactly that point.
//
// The matrix is exhaustive by construction — every fsync boundary, every
// rename, every directory-entry update of the workload gets its own crash
// point — which is what turns "we fsync in the right places" from a
// belief into a checked property. CI runs the bounded default matrices on
// every push; the nightly job sets -faultfs.full (or FAULTFS_FULL=1) for
// the multi-seed deep run.
package harness

import (
	"flag"
	"os"
	"testing"

	"repro/internal/faultfs"
)

var (
	seedFlag  = flag.Int64("faultfs.seed", 1, "base seed for faultfs crash matrices")
	crashFlag = flag.Int64("faultfs.crash", -1, "replay a single faultfs crash point instead of the full matrix")
	fullFlag  = flag.Bool("faultfs.full", false, "run the deep multi-seed crash matrices (nightly scale)")
)

// Full reports whether the deep (nightly) matrix was requested, via the
// -faultfs.full flag or FAULTFS_FULL=1 in the environment.
func Full() bool {
	return *fullFlag || os.Getenv("FAULTFS_FULL") == "1"
}

// Seeds returns the seed set for a matrix: the base seed alone by
// default, n consecutive seeds under Full.
func Seeds(n int) []int64 {
	base := *seedFlag
	if !Full() || n < 1 {
		return []int64{base}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Round is one crash-matrix subject: a workload (the simulated process's
// whole life — open, mutate, close) and a verifier that asserts the
// package's invariants over whatever the crash left durable. A fresh
// Round is built per crash point, so closures start from clean state.
type Round struct {
	// Workload runs the process under test against fsys. Once the planted
	// crash fires, every filesystem call fails with faultfs.ErrCrashed;
	// the workload just propagates errors and the harness ignores them.
	Workload func(fsys *faultfs.FaultFS) error
	// Verify runs after the crash and recovery against the durable image
	// (fault injection is over by then). It must re-open the store the way
	// a restarted process would and check the package invariants.
	Verify func(fsys *faultfs.FaultFS) error
}

// Options configures a Matrix run.
type Options struct {
	// Package is the package path printed in repro commands
	// (e.g. "./internal/jobs/walstore").
	Package string
	// DropUnsyncedDirs makes every crash drop all unsynced directory
	// entries (the maximally adversarial image) instead of flipping a
	// seed-derived coin per entry.
	DropUnsyncedDirs bool
	// Stride subsamples the matrix, testing every Stride-th op index
	// (Full runs always test every index); <=1 tests all of them.
	Stride int
	// ExtraSeeds is how many consecutive seeds the deep (Full) run uses;
	// <=0 selects 5.
	ExtraSeeds int
}

// Matrix enumerates the workload's crash points and verifies each one,
// returning how many distinct (seed, op) crash points were exercised.
// With -faultfs.crash=N it replays only op index N under -faultfs.seed.
func Matrix(t *testing.T, opts Options, factory func() Round) int {
	t.Helper()
	if opts.ExtraSeeds <= 0 {
		opts.ExtraSeeds = 5
	}
	stride := opts.Stride
	if stride <= 1 || Full() {
		stride = 1
	}
	points := 0
	for _, seed := range Seeds(opts.ExtraSeeds) {
		// Golden run: no faults, count the ops and require success.
		golden := faultfs.New(faultfs.NoFaults(seed))
		r := factory()
		if err := r.Workload(golden); err != nil {
			t.Fatalf("golden workload failed (seed %d): %v", seed, err)
		}
		// The matrix bound is the workload's op count, captured before the
		// verifier adds its own operations.
		n := golden.OpCount()
		if err := r.Verify(golden); err != nil {
			t.Fatalf("golden verify failed (seed %d): %v", seed, err)
		}
		if n == 0 {
			t.Fatalf("workload performed no filesystem operations")
		}
		lo, hi := int64(0), n
		if *crashFlag >= 0 {
			lo, hi, stride = *crashFlag, *crashFlag+1, 1
		}
		for op := lo; op < hi; op += int64(stride) {
			points++
			if !runPoint(t, opts, factory, seed, op) {
				return points
			}
		}
		if *crashFlag >= 0 {
			break // single-point replay: one seed is the point
		}
	}
	return points
}

// runPoint runs one (seed, op) crash point; it reports false when the
// failure budget is blown and the matrix should stop.
func runPoint(t *testing.T, opts Options, factory func() Round, seed, op int64) bool {
	t.Helper()
	plan := faultfs.CrashPlan(seed, op)
	plan.DropUnsyncedDirs = opts.DropUnsyncedDirs
	fsys := faultfs.New(plan)
	r := factory()
	err := r.Workload(fsys)
	if !fsys.Crashed() && err != nil {
		t.Errorf("workload failed without a crash (seed %d, op %d): %v", seed, op, err)
		return false
	}
	fsys.Recover()
	if err := r.Verify(fsys); err != nil {
		t.Errorf("crash-matrix invariant violated at op %d (seed %d): %v\n  repro: go test -run '%s' %s -faultfs.seed=%d -faultfs.crash=%d",
			op, seed, err, t.Name(), opts.Package, seed, op)
		for _, o := range tail(fsys.Trace(), 8) {
			t.Logf("  trace %s", o)
		}
		return false
	}
	return true
}

// tail returns the last n ops of a trace.
func tail(ops []faultfs.Op, n int) []faultfs.Op {
	if len(ops) <= n {
		return ops
	}
	return ops[len(ops)-n:]
}
