package faultfs

import (
	"bytes"
	"fmt"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// Plan configures a FaultFS's fault injection. The zero value injects
// nothing (a plain in-memory filesystem with durability tracking); every
// "AtOp" field is compared against the global operation counter, so a
// golden run's OpCount bounds the interesting values. All random choices
// (torn-tail lengths, which unsynced directory entries survive a crash,
// short-write lengths) derive from Seed plus the op index, so a failure
// replays deterministically from (Seed, the AtOp value).
type Plan struct {
	// Seed drives every random choice the filesystem makes.
	Seed int64

	// CrashAtOp simulates a crash at the operation with this index (the
	// op fails with ErrCrashed, as does everything after it, until
	// Recover). Negative disables.
	CrashAtOp int64

	// ENOSPCAtOp makes the first Write at or after this op index fail
	// with ENOSPC; negative disables. With ShortWrites, a seed-derived
	// prefix of the buffer lands before the failure (a short write);
	// otherwise nothing lands. ENOSPCSticky keeps every later Write
	// failing too — a full disk stays full — until ClearFaults.
	ENOSPCAtOp   int64
	ShortWrites  bool
	ENOSPCSticky bool

	// FailSyncAtOp makes the first Sync at or after this op index fail
	// with EIO (negative disables); FailSyncSticky keeps later Syncs
	// failing until ClearFaults. A failed sync leaves durability exactly
	// where it was.
	FailSyncAtOp   int64
	FailSyncSticky bool

	// FailRenameAtOp makes the first Rename at or after this op index
	// fail with EIO (negative disables); FailRenameSticky keeps later
	// Renames failing until ClearFaults.
	FailRenameAtOp   int64
	FailRenameSticky bool

	// DropUnsyncedDirs makes Recover always discard directory mutations
	// (creates, renames, removes) that were not made durable by a
	// directory sync — the maximally adversarial legal outcome, and the
	// one that exposes missing fsync-the-parent calls. When false, each
	// unsynced entry change independently survives or not by coin flip.
	DropUnsyncedDirs bool
}

// NoFaults is the Plan disabling every injector: a golden run for
// counting ops.
func NoFaults(seed int64) Plan {
	return Plan{Seed: seed, CrashAtOp: -1, ENOSPCAtOp: -1, FailSyncAtOp: -1, FailRenameAtOp: -1}
}

// CrashPlan is the Plan for one crash-matrix point: crash at op, no other
// faults.
func CrashPlan(seed, op int64) Plan {
	p := NoFaults(seed)
	p.CrashAtOp = op
	return p
}

// Op is one traced filesystem operation.
type Op struct {
	// Index is the operation's position in the global order, from 0.
	Index int64
	// Kind names the operation ("write", "sync", "rename", ...).
	Kind string
	// Path is the file the operation touched (the source, for renames).
	Path string
	// N is the byte count of a read or write.
	N int
	// Err is the operation's error, if any ("" on success).
	Err string
}

// String renders the op as one trace line.
func (o Op) String() string {
	s := fmt.Sprintf("#%d %s %s", o.Index, o.Kind, o.Path)
	if o.N > 0 {
		s += fmt.Sprintf(" (%dB)", o.N)
	}
	if o.Err != "" {
		s += " ! " + o.Err
	}
	return s
}

// memFile is one simulated file: the page-cache view plus the durable
// image as of its last successful sync.
type memFile struct {
	data    []byte
	durable []byte
}

// memDir is one simulated directory: the live entry set plus the durable
// entry set as of its last successful directory sync.
type memDir struct {
	entries map[string]any // name -> *memFile | *memDir
	durable map[string]any
}

func newMemDir() *memDir {
	return &memDir{entries: map[string]any{}, durable: map[string]any{}}
}

// FaultFS is the fault-injecting in-memory filesystem. All methods are
// safe for concurrent use; every operation draws a global index used for
// fault triggering, tracing and deterministic randomness.
type FaultFS struct {
	mu      sync.Mutex
	plan    Plan
	root    *memDir
	ops     int64
	epoch   int // bumped by Recover; stale handles and locks die with their epoch
	crashed bool
	crashOp int64 // the op index the crash fired at (for Recover's rng)
	trace   []Op
	locks   map[string]int // lock path -> holder epoch
	tmpSeq  int64
	// consumed one-shot injectors
	crashDone, enospcDone, syncFailDone, renameFailDone bool
}

// New builds a FaultFS executing the given plan over an initially empty
// tree.
func New(plan Plan) *FaultFS {
	return &FaultFS{plan: plan, root: newMemDir(), locks: map[string]int{}}
}

// OpCount returns how many operations have executed (including failed
// ones) — run a workload over New(NoFaults(seed)) and the result bounds
// the crash matrix.
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the simulated process has crashed.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Trace snapshots the operation trace.
func (f *FaultFS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Op, len(f.trace))
	copy(out, f.trace)
	return out
}

// Crash crashes the simulated process now: every in-flight handle and
// all future operations fail with ErrCrashed until Recover.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crashed = true
		f.crashOp = f.ops
	}
}

// ClearFaults disables the sticky ENOSPC/sync/rename injectors — the
// disk "got space back" — without touching crash state.
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan.ENOSPCAtOp = -1
	f.plan.FailSyncAtOp = -1
	f.plan.FailRenameAtOp = -1
}

// Recover applies the crash semantics and hands the durable image to a
// "fresh process": unsynced file suffixes are torn at a seed-derived byte
// length, directory mutations never made durable by a directory sync are
// dropped (always with DropUnsyncedDirs, else by per-entry coin flip),
// every open handle and advisory lock dies, and subsequent operations
// succeed again. Calling it without a crash first just invalidates
// handles and locks (a clean restart).
func (f *FaultFS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(mix(f.plan.Seed, f.crashOp)))
	f.recoverDir(f.root, rng)
	f.crashed = false
	// The planted crash is spent: whether or not it fired, the recovered
	// process must not crash again (a plan whose CrashAtOp lies past the
	// workload's end would otherwise fire mid-verification).
	f.crashDone = true
	f.epoch++
	f.locks = map[string]int{}
}

// recoverDir applies crash semantics to one directory subtree. Called
// with f.mu held; deterministic because the entry names are visited in
// sorted order.
func (f *FaultFS) recoverDir(d *memDir, rng *rand.Rand) {
	names := map[string]struct{}{}
	for name := range d.entries {
		names[name] = struct{}{}
	}
	for name := range d.durable {
		names[name] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	surviving := map[string]any{}
	for _, name := range sorted {
		cur, inCur := d.entries[name]
		dur, inDur := d.durable[name]
		switch {
		case inCur && inDur && cur == dur:
			surviving[name] = cur
		case inCur && !inDur: // created (or renamed in) since the last dir sync
			if !f.plan.DropUnsyncedDirs && rng.Intn(2) == 0 {
				surviving[name] = cur
			}
		case !inCur && inDur: // removed (or renamed away) since the last dir sync
			if f.plan.DropUnsyncedDirs || rng.Intn(2) == 1 {
				surviving[name] = dur // the removal never hit the disk
			}
		default: // replaced: rename over an existing entry
			if !f.plan.DropUnsyncedDirs && rng.Intn(2) == 0 {
				surviving[name] = cur
			} else {
				surviving[name] = dur
			}
		}
	}
	d.entries = surviving
	d.durable = cloneEntries(surviving)
	for _, node := range surviving {
		switch n := node.(type) {
		case *memDir:
			f.recoverDir(n, rng)
		case *memFile:
			recoverFile(n, rng)
		}
	}
}

// recoverFile applies the torn-tail rule to one file: the durable image
// survives; a purely appended suffix is torn at a random byte length; any
// diverging overwrite or truncation that was never synced is lost.
func recoverFile(n *memFile, rng *rand.Rand) {
	d, p := n.durable, n.data
	switch {
	case bytes.Equal(p, d):
		// fully durable
	case len(p) > len(d) && bytes.Equal(p[:len(d)], d):
		keep := rng.Intn(len(p) - len(d) + 1)
		n.data = append(cloneBytes(d), p[len(d):len(d)+keep]...)
	case len(p) < len(d) && bytes.Equal(d[:len(p)], p):
		// unsynced truncate: persisted or not, by coin
		if rng.Intn(2) == 0 {
			n.data = cloneBytes(d)
		}
	default:
		n.data = cloneBytes(d)
	}
	n.durable = cloneBytes(n.data)
}

func cloneBytes(b []byte) []byte { return append([]byte(nil), b...) }

func cloneEntries(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mix folds a seed and an op index into one rng source.
func mix(seed, op int64) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(op)*0xbf58476d1ce4e5b9 + 1
	x ^= x >> 31
	return int64(x)
}

// beginOp draws the next op index, records the trace entry, and fires the
// planned crash. Called with f.mu held; the returned record is already in
// the trace and may be amended (N, Err) before the lock is released.
func (f *FaultFS) beginOp(kind, p string) (*Op, error) {
	idx := f.ops
	f.ops++
	f.trace = append(f.trace, Op{Index: idx, Kind: kind, Path: p})
	rec := &f.trace[len(f.trace)-1]
	if f.crashed {
		rec.Err = ErrCrashed.Error()
		return rec, ErrCrashed
	}
	if f.plan.CrashAtOp >= 0 && idx >= f.plan.CrashAtOp && !f.crashDone {
		f.crashed = true
		f.crashDone = true
		f.crashOp = idx
		rec.Err = ErrCrashed.Error()
		return rec, ErrCrashed
	}
	return rec, nil
}

// ---- path resolution (f.mu held) ----

// split normalizes a path into its element list; both absolute and
// relative paths resolve against the filesystem root.
func split(name string) []string {
	cleaned := path.Clean(strings.ReplaceAll(name, "\\", "/"))
	cleaned = strings.TrimPrefix(cleaned, "/")
	if cleaned == "" || cleaned == "." {
		return nil
	}
	return strings.Split(cleaned, "/")
}

// lookupDir resolves the directory holding name's last element.
func (f *FaultFS) lookupDir(name string) (*memDir, string, error) {
	elems := split(name)
	if len(elems) == 0 {
		return nil, "", &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	d := f.root
	for _, e := range elems[:len(elems)-1] {
		next, ok := d.entries[e]
		if !ok {
			return nil, "", &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		nd, ok := next.(*memDir)
		if !ok {
			return nil, "", &fs.PathError{Op: "open", Path: name, Err: syscall.ENOTDIR}
		}
		d = nd
	}
	return d, elems[len(elems)-1], nil
}

// lookup resolves name to its node (file or directory).
func (f *FaultFS) lookup(name string) (any, error) {
	elems := split(name)
	node := any(f.root)
	for _, e := range elems {
		d, ok := node.(*memDir)
		if !ok {
			return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.ENOTDIR}
		}
		node, ok = d.entries[e]
		if !ok {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
	}
	return node, nil
}
