package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeFile(t *testing.T, fsys FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDurableRoundtrip: fully synced bytes and dir entries survive a
// crash byte-for-byte.
func TestDurableRoundtrip(t *testing.T) {
	f := New(NoFaults(1))
	if err := f.MkdirAll("store/wal", 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, f, "store/wal/seg-1", []byte("hello\nworld\n"), true)
	if err := SyncDirs(f, "store", "store/wal"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	f.Recover()
	if got := readAll(t, f, "store/wal/seg-1"); !bytes.Equal(got, []byte("hello\nworld\n")) {
		t.Fatalf("synced content lost: %q", got)
	}
}

// TestTornTail: the unsynced suffix of an append is torn at a byte
// length deterministic in (seed, crash op).
func TestTornTail(t *testing.T) {
	lengths := map[int]bool{}
	for seed := int64(0); seed < 32; seed++ {
		f := New(NoFaults(seed))
		f.plan.DropUnsyncedDirs = false
		h, err := f.Create("log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("durable|")); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := SyncDir(f, "."); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		f.Crash()
		f.Recover()
		got := readAll(t, f, "log")
		if !bytes.HasPrefix(got, []byte("durable|")) {
			t.Fatalf("seed %d: durable prefix lost: %q", seed, got)
		}
		tail := got[len("durable|"):]
		if !bytes.HasPrefix([]byte("0123456789"), tail) {
			t.Fatalf("seed %d: torn tail is not a prefix of the unsynced suffix: %q", seed, tail)
		}
		lengths[len(tail)] = true

		// Determinism: the same seed reproduces the same image.
		g := New(NoFaults(seed))
		h2, _ := g.Create("log")
		h2.Write([]byte("durable|"))
		h2.Sync()
		SyncDir(g, ".")
		h2.Write([]byte("0123456789"))
		g.Crash()
		g.Recover()
		if got2 := readAll(t, g, "log"); !bytes.Equal(got, got2) {
			t.Fatalf("seed %d: crash image not deterministic: %q vs %q", seed, got, got2)
		}
	}
	if len(lengths) < 3 {
		t.Fatalf("torn-tail lengths show no byte-granularity variety: %v", lengths)
	}
}

// TestUnsyncedDirEntriesDrop: a synced file whose directory entry was
// never synced vanishes under DropUnsyncedDirs; SyncDir pins it.
func TestUnsyncedDirEntriesDrop(t *testing.T) {
	plan := NoFaults(7)
	plan.DropUnsyncedDirs = true
	f := New(plan)
	if err := f.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(f, "."); err != nil {
		t.Fatal(err)
	}
	writeFile(t, f, "d/kept", []byte("kept"), true)
	writeFile(t, f, "d/lost", []byte("lost"), true)
	if err := SyncDir(f, "d"); err != nil { // pins "kept" and "lost"
		t.Fatal(err)
	}
	writeFile(t, f, "d/unsynced-entry", []byte("x"), true) // file synced, entry not
	if err := f.Remove("d/lost"); err != nil {             // removal not synced either
		t.Fatal(err)
	}
	f.Crash()
	f.Recover()
	if _, err := f.ReadFile("d/unsynced-entry"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced dir entry survived the crash: %v", err)
	}
	if got := readAll(t, f, "d/kept"); !bytes.Equal(got, []byte("kept")) {
		t.Fatalf("synced entry lost: %q", got)
	}
	// The unsynced removal is rolled back: the file reappears.
	if got := readAll(t, f, "d/lost"); !bytes.Equal(got, []byte("lost")) {
		t.Fatalf("unsynced removal persisted under DropUnsyncedDirs: %q", got)
	}
}

// TestRenameDurability: an unsynced rename can be lost; after SyncDir it
// survives.
func TestRenameDurability(t *testing.T) {
	plan := NoFaults(3)
	plan.DropUnsyncedDirs = true
	f := New(plan)
	if err := f.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	SyncDir(f, ".")
	writeFile(t, f, "d/blob.tmp", []byte("payload"), true)
	SyncDir(f, "d")
	if err := f.Rename("d/blob.tmp", "d/blob"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	f.Recover()
	if _, err := f.ReadFile("d/blob"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced rename survived DropUnsyncedDirs: %v", err)
	}
	if got := readAll(t, f, "d/blob.tmp"); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("rename rollback lost the source: %q", got)
	}
	// Same sequence with the parent fsync: the rename is durable.
	if err := f.Rename("d/blob.tmp", "d/blob"); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(f, "d"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	f.Recover()
	if got := readAll(t, f, "d/blob"); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("synced rename lost: %q", got)
	}
}

// TestCrashAtOp: the planned op fails with ErrCrashed and so does
// everything after it until Recover.
func TestCrashAtOp(t *testing.T) {
	plan := NoFaults(1)
	plan.CrashAtOp = 2
	f := New(plan)
	if err := f.MkdirAll("d", 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	h, err := f.Create("d/x") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("write at crash op = %v, want ErrCrashed", err)
	}
	if _, err := f.Stat("d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op after crash = %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after planned crash")
	}
	f.Recover()
	if _, err := f.Stat("d"); err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("op after Recover = %v", err)
	}
	// The dead process's handle stays dead.
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write = %v, want ErrCrashed", err)
	}
}

// TestENOSPC: the planned write fails with ENOSPC; with ShortWrites a
// prefix lands; sticky keeps the disk full until ClearFaults.
func TestENOSPC(t *testing.T) {
	plan := NoFaults(11)
	plan.ENOSPCAtOp = 0
	plan.ShortWrites = true
	plan.ENOSPCSticky = true
	f := New(plan)
	h, err := f.Create("x") // ENOSPCAtOp=0 only fires on writes
	if err != nil {
		t.Fatal(err)
	}
	n, err := h.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write = %v, want ENOSPC", err)
	}
	if n < 0 || n >= 10 {
		t.Fatalf("short write landed %d bytes, want 0..9", n)
	}
	if got := readAll(t, f, "x"); len(got) != n {
		t.Fatalf("file holds %d bytes after short write of %d", len(got), n)
	}
	if _, err := h.Write([]byte("more")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sticky ENOSPC did not persist: %v", err)
	}
	f.ClearFaults()
	if _, err := h.Write([]byte("more")); err != nil {
		t.Fatalf("write after ClearFaults = %v", err)
	}
}

// TestSyncAndRenameFaults: one-shot failures fire once; durability is
// untouched by a failed sync.
func TestSyncAndRenameFaults(t *testing.T) {
	plan := NoFaults(5)
	plan.FailSyncAtOp = 0
	plan.FailRenameAtOp = 0
	f := New(plan)
	h, err := f.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("planned sync failure = %v, want EIO", err)
	}
	if err := h.Sync(); err != nil { // one-shot: second sync succeeds
		t.Fatalf("second sync = %v", err)
	}
	if err := f.Rename("x", "y"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("planned rename failure = %v, want EIO", err)
	}
	if err := f.Rename("x", "y"); err != nil {
		t.Fatalf("second rename = %v", err)
	}
}

// TestTryLock: a held lock refuses a second holder; crash (epoch bump)
// releases it, like process death dropping a flock.
func TestTryLock(t *testing.T) {
	f := New(NoFaults(1))
	l, err := f.TryLock("LOCK")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.TryLock("LOCK"); !errors.Is(err, ErrLocked) {
		t.Fatalf("second TryLock = %v, want ErrLocked", err)
	}
	f.Crash()
	f.Recover()
	l2, err := f.TryLock("LOCK")
	if err != nil {
		t.Fatalf("TryLock after crash = %v (crash must release locks)", err)
	}
	_ = l.Close() // the dead holder's close is a no-op against the new epoch
	if _, err := f.TryLock("LOCK"); !errors.Is(err, ErrLocked) {
		t.Fatalf("stale Close released the successor's lock")
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := f.TryLock("LOCK")
	if err != nil {
		t.Fatalf("TryLock after Close = %v", err)
	}
	l3.Close()
}

// TestTraceDeterminism: the same workload over the same plan yields the
// same op trace.
func TestTraceDeterminism(t *testing.T) {
	run := func() []Op {
		f := New(NoFaults(9))
		f.MkdirAll("a/b", 0o755)
		writeFile(t, f, "a/b/f1", []byte("one"), true)
		tmp, err := f.CreateTemp("a/b", "blob.tmp*")
		if err != nil {
			t.Fatal(err)
		}
		tmp.Write([]byte("two"))
		tmp.Sync()
		tmp.Close()
		f.Rename(tmp.Name(), "a/b/f2")
		f.ReadDir("a/b")
		return f.Trace()
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	if t1[0].String() == "" {
		t.Fatal("empty op rendering")
	}
}

// TestSeekTruncateReadback: the handle surface used by the anchor log
// (read-modify-truncate-seek-append) behaves like an os.File.
func TestSeekTruncateReadback(t *testing.T) {
	f := New(NoFaults(2))
	h, err := f.OpenFile("log", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("0123456789"))
	if _, err := h.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(h)
	if err != nil || !bytes.Equal(all, []byte("0123456789")) {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}
	if err := h.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, f, "log"); !bytes.Equal(got, []byte("0123XY")) {
		t.Fatalf("after truncate+append: %q", got)
	}
}

// TestOsFSPassthrough: the production FS round-trips through the real
// filesystem, including TryLock and SyncDir.
func TestOsFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	h, err := OS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(OS, dir); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(name)
	if err != nil || !bytes.Equal(data, []byte("data")) {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	l, err := OS.TryLock(filepath.Join(dir, "LOCK"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := OS.TryLock(filepath.Join(dir, "LOCK")); !errors.Is(err, ErrLocked) {
		t.Fatalf("second flock = %v, want ErrLocked", err)
	}
}
