package schemastore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const refA = "aa11bb22cc33dd44ee55ff6600112233445566778899aabbccddeeff00112233"

func open(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := open(t)
	if _, err := c.Get(refA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty cache Get = %v, want ErrNotFound", err)
	}
	blob := []byte("compiled schema bytes")
	if err := c.Put(refA, blob); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(refA)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n, err := c.Len(); n != 1 || err != nil {
		t.Fatalf("Len = %d, %v", n, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The blob lands under the two-digit fanout directory.
	if _, err := os.Stat(filepath.Join(c.Dir(), refA[:2], refA+Ext)); err != nil {
		t.Errorf("fanout layout: %v", err)
	}
}

func TestFindByPrefix(t *testing.T) {
	c := open(t)
	other := "aa11bb22dd000000000000000000000000000000000000000000000000000000"
	elsewhere := "bb00000000000000000000000000000000000000000000000000000000000000"
	for _, ref := range []string{refA, other, elsewhere} {
		if err := c.Put(ref, []byte("blob:"+ref)); err != nil {
			t.Fatal(err)
		}
	}
	ref, data, err := c.FindByPrefix(refA[:12])
	if err != nil || ref != refA || string(data) != "blob:"+refA {
		t.Fatalf("FindByPrefix = %q, %q, %v", ref, data, err)
	}
	if _, _, err := c.FindByPrefix("aa11bb22"); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("shared prefix = %v, want ErrAmbiguous", err)
	}
	if _, _, err := c.FindByPrefix("aa11bb22ee55"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown prefix = %v, want ErrNotFound", err)
	}
	if _, _, err := c.FindByPrefix("cc00000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing fanout dir = %v, want ErrNotFound", err)
	}
}

func TestRefValidation(t *testing.T) {
	c := open(t)
	for _, bad := range []string{"", "short", "ABCDEF0011", "../../../etc/passwd", "zz11bb22cc33dd44"} {
		if err := c.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed ref", bad)
		}
		if _, err := c.Get(bad); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want a malformed-ref error", bad, err)
		}
	}
}

func TestDeleteAndRecovery(t *testing.T) {
	c := open(t)
	if err := c.Put(refA, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(refA); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(refA); err != nil {
		t.Fatalf("double delete = %v, want nil", err)
	}
	if _, err := c.Get(refA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c := open(t)
	blob := []byte(strings.Repeat("schema", 1000))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.Put(refA, blob); err != nil {
					t.Error(err)
					return
				}
				got, err := c.Get(refA)
				if err != nil || len(got) != len(blob) {
					t.Errorf("torn read: %d bytes, %v", len(got), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := c.Len(); n != 1 {
		t.Errorf("Len = %d after racing Puts of one ref", n)
	}
}

func TestOpenRejectsEmptyAndFiles(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Error("Open over a regular file succeeded")
	}
}
