// Package schemastore is the disk tier of the two-tier compiled-schema
// store: a content-addressed cache of compiled-schema blobs keyed by the
// registry's full-key digest (the same hex reference documents use for
// schemaRef routing). The engine's in-memory sharded registry is tier 1;
// this package persists the compiled artifacts so a process restart — or a
// registry eviction — rehydrates a schema at deserialization speed instead
// of recompiling it from DTD source.
//
// Layout: <dir>/<ref[:2]>/<ref>.pvsc — a two-hex-digit fanout keeps
// directories small under large schema populations. Writes go through a
// temp file in the same directory plus an atomic rename, so readers (and
// concurrent writers racing on the same ref) never observe a torn blob.
// Addresses are content-derived, so a ref's blob never changes: the racing
// writers' blobs are identical and last-rename-wins is safe.
//
// The cache trusts nothing it reads back: blobs carry their own checksums
// (see internal/core's binary codec), and callers treat any load or decode
// failure as a miss, recompile, and Delete the damaged file. The
// commit protocol makes the atomic claim real across power loss: the temp
// file is fsynced before the rename and the fanout directory is fsynced
// after it — without the directory sync a crash can silently undo the
// rename itself. Filesystem access goes through the faultfs seam
// (OpenFS), and the package's crash-matrix tests enumerate every
// filesystem operation of a Put/Get workload to pin the
// intact-or-recompile invariant.
package schemastore

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
)

// Ext is the compiled-schema blob file extension.
const Ext = ".pvsc"

// ErrNotFound reports a ref with no cached blob.
var ErrNotFound = errors.New("schemastore: compiled schema not found")

// ErrAmbiguous reports a ref prefix matching more than one cached blob.
var ErrAmbiguous = errors.New("schemastore: ref prefix matches several compiled schemas")

// Cache is a disk-backed, content-addressed compiled-schema cache. All
// methods are safe for concurrent use (by goroutines and by cooperating
// processes sharing the directory).
type Cache struct {
	dir  string
	fsys faultfs.FS
	// syncedDirs remembers fanout directories already made durable, so
	// steady-state Puts into a warm fanout pay one directory fsync (for
	// the new entry), not two.
	syncedDirs sync.Map // fanout dir path -> struct{}

	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64
	errs   atomic.Int64
}

// Stats is a snapshot of cache counters: blob loads that hit and missed,
// completed writes, and I/O-level errors (failed reads, writes or
// deletes; decode failures are counted by the caller that decodes).
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"`
}

// Open returns a cache rooted at dir, creating the directory if needed,
// over the real filesystem.
func Open(dir string) (*Cache, error) { return OpenFS(dir, nil) }

// OpenFS is Open over an explicit filesystem seam (nil selects the real
// filesystem); crash-consistency tests inject a faultfs.FaultFS.
func OpenFS(dir string, fsys faultfs.FS) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("schemastore: empty cache directory")
	}
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("schemastore: %w", err)
	}
	if err := faultfs.SyncDirs(fsys, filepath.Dir(dir), dir); err != nil {
		return nil, fmt.Errorf("schemastore: syncing cache root: %w", err)
	}
	return &Cache{dir: dir, fsys: fsys}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a full ref to its blob path under the two-digit fanout.
func (c *Cache) path(ref string) string {
	return filepath.Join(c.dir, ref[:2], ref+Ext)
}

// validRef accepts lowercase-hex refs long enough to have a fanout
// directory; anything else (path separators above all) is rejected before
// it can touch the filesystem.
func validRef(ref string) bool {
	if len(ref) < 8 {
		return false
	}
	for i := 0; i < len(ref); i++ {
		c := ref[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get loads the blob stored for ref. A missing blob returns ErrNotFound;
// any other failure is an I/O error.
func (c *Cache) Get(ref string) ([]byte, error) {
	if !validRef(ref) {
		return nil, fmt.Errorf("schemastore: malformed ref %q", ref)
	}
	data, err := c.fsys.ReadFile(c.path(ref))
	switch {
	case err == nil:
		c.hits.Add(1)
		return data, nil
	case errors.Is(err, fs.ErrNotExist):
		c.misses.Add(1)
		return nil, ErrNotFound
	default:
		c.errs.Add(1)
		return nil, fmt.Errorf("schemastore: %w", err)
	}
}

// FindByPrefix resolves a ref prefix (>=8 hex digits, so the fanout
// directory is determined) to the unique stored blob whose ref starts with
// it. It returns the full ref alongside the blob; ErrNotFound when nothing
// matches, ErrAmbiguous when several do.
func (c *Cache) FindByPrefix(prefix string) (string, []byte, error) {
	if !validRef(prefix) {
		return "", nil, fmt.Errorf("schemastore: malformed ref prefix %q", prefix)
	}
	entries, err := c.fsys.ReadDir(filepath.Join(c.dir, prefix[:2]))
	if errors.Is(err, fs.ErrNotExist) {
		c.misses.Add(1)
		return "", nil, ErrNotFound
	}
	if err != nil {
		c.errs.Add(1)
		return "", nil, fmt.Errorf("schemastore: %w", err)
	}
	found := ""
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), Ext)
		if !ok || !strings.HasPrefix(name, prefix) {
			continue
		}
		if found != "" {
			return "", nil, ErrAmbiguous
		}
		found = name
	}
	if found == "" {
		c.misses.Add(1)
		return "", nil, ErrNotFound
	}
	data, err := c.Get(found)
	return found, data, err
}

// Put stores the blob for ref atomically and durably: the temp file's
// bytes are fsynced before the rename, and the fanout directory is
// fsynced after it (a rename whose directory entry was never synced can
// be undone wholesale by a crash). Concurrent Puts for the same ref are
// safe: content addressing makes their payloads identical.
func (c *Cache) Put(ref string, data []byte) error {
	if !validRef(ref) {
		return fmt.Errorf("schemastore: malformed ref %q", ref)
	}
	dst := c.path(ref)
	if err := c.ensureFanout(filepath.Dir(dst)); err != nil {
		c.errs.Add(1)
		return fmt.Errorf("schemastore: %w", err)
	}
	tmp, err := c.fsys.CreateTemp(filepath.Dir(dst), ref+".tmp*")
	if err != nil {
		c.errs.Add(1)
		return fmt.Errorf("schemastore: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = c.fsys.Rename(tmp.Name(), dst)
	}
	if werr == nil {
		werr = faultfs.SyncDir(c.fsys, filepath.Dir(dst))
	}
	if werr != nil {
		c.fsys.Remove(tmp.Name())
		c.errs.Add(1)
		return fmt.Errorf("schemastore: %w", werr)
	}
	c.writes.Add(1)
	return nil
}

// ensureFanout creates one fanout directory durably, once: later Puts
// into the same fanout skip straight to the blob write.
func (c *Cache) ensureFanout(dir string) error {
	if _, ok := c.syncedDirs.Load(dir); ok {
		return nil
	}
	if err := c.fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := faultfs.SyncDir(c.fsys, c.dir); err != nil {
		return err
	}
	c.syncedDirs.Store(dir, struct{}{})
	return nil
}

// Delete removes the blob for ref (the corruption-recovery path); a
// missing blob is not an error.
func (c *Cache) Delete(ref string) error {
	if !validRef(ref) {
		return fmt.Errorf("schemastore: malformed ref %q", ref)
	}
	err := c.fsys.Remove(c.path(ref))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		c.errs.Add(1)
		return fmt.Errorf("schemastore: %w", err)
	}
	return nil
}

// Len counts the stored blobs (a directory walk; for tooling and tests,
// not hot paths).
func (c *Cache) Len() (int, error) {
	n := 0
	ents, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		sub, err := c.fsys.ReadDir(filepath.Join(c.dir, ent.Name()))
		if err != nil {
			return 0, err
		}
		for _, e := range sub {
			if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
				n++
			}
		}
	}
	return n, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Writes: c.writes.Load(),
		Errors: c.errs.Load(),
	}
}
