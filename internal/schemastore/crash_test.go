package schemastore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/faultfs"
	"repro/internal/faultfs/harness"
)

// The cache's crash matrix: a Put/Get/Delete/re-Put workload over real
// compiled-schema blobs is crashed at every filesystem operation. The
// invariant — the one the atomic tmp+fsync+rename+dir-fsync commit
// protocol exists for — is intact-or-absent: after any crash, Get serves
// either the complete blob (byte-equal, and decodable by the binary
// codec) or ErrNotFound (the caller recompiles). A torn blob at the final
// path is never observable, and the reopened cache always accepts new
// Puts.

// Two refs sharing a fanout directory plus one in its own, so the matrix
// crosses single- and multi-entry fanout states.
const (
	crashRefA = "ab11bb22cc33dd44ee55ff6600112233445566778899aabbccddeeff00112233"
	crashRefB = "ab99bb22cc33dd44ee55ff6600112233445566778899aabbccddeeff00112233"
	crashRefC = "cd11bb22cc33dd44ee55ff6600112233445566778899aabbccddeeff00112233"
)

// compiledBlobs builds real compiled-schema blobs (binary codec framing,
// trailing CRC) for the matrix, once.
var compiledBlobs = sync.OnceValue(func() map[string][]byte {
	out := map[string][]byte{}
	for ref, fx := range map[string]struct{ src, root string }{
		crashRefA: {dtd.Figure1, "r"},
		crashRefB: {dtd.T1, "a"},
		crashRefC: {dtd.Play, "play"},
	} {
		d, err := dtd.Parse(fx.src)
		if err != nil {
			panic(err)
		}
		s, err := core.Compile(d, fx.root, core.Options{})
		if err != nil {
			panic(err)
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			panic(err)
		}
		out[ref] = blob
	}
	return out
})

// cacheWorkload is the simulated process's life: open, fill, read,
// delete, refill.
func cacheWorkload(fsys *faultfs.FaultFS) error {
	blobs := compiledBlobs()
	c, err := OpenFS("cache", fsys)
	if err != nil {
		return err
	}
	for _, ref := range []string{crashRefA, crashRefB, crashRefC} {
		if err := c.Put(ref, blobs[ref]); err != nil {
			return err
		}
	}
	if _, err := c.Get(crashRefA); err != nil {
		return err
	}
	if _, _, err := c.FindByPrefix(crashRefC[:10]); err != nil {
		return err
	}
	if err := c.Delete(crashRefB); err != nil {
		return err
	}
	if err := c.Put(crashRefB, blobs[crashRefB]); err != nil {
		return err
	}
	// Churn the single-entry fanout too: delete, confirm the miss, re-Put.
	if err := c.Delete(crashRefC); err != nil {
		return err
	}
	if _, err := c.Get(crashRefC); !errors.Is(err, ErrNotFound) {
		return fmt.Errorf("Get after Delete: %v", err)
	}
	if err := c.Put(crashRefC, blobs[crashRefC]); err != nil {
		return err
	}
	_, err = c.Get(crashRefB)
	return err
}

// verifyCache reopens the recovered image and checks intact-or-absent for
// every ref, then that the cache still accepts writes.
func verifyCache(fsys *faultfs.FaultFS) error {
	blobs := compiledBlobs()
	c, err := OpenFS("cache", fsys)
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	for _, ref := range []string{crashRefA, crashRefB, crashRefC} {
		data, err := c.Get(ref)
		switch {
		case errors.Is(err, ErrNotFound):
			continue // recompile path: a legal outcome at every crash point
		case err != nil:
			return fmt.Errorf("Get(%s) after crash: %w", ref, err)
		}
		if !bytes.Equal(data, blobs[ref]) {
			return fmt.Errorf("Get(%s) served a torn blob: %d bytes, want %d", ref, len(data), len(blobs[ref]))
		}
		// The CRC catch, pinned end to end: whatever Get serves must pass
		// the codec's checksum and decode.
		if _, err := core.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("Get(%s) served an undecodable blob: %w", ref, err)
		}
	}
	// The recovered cache must accept the recompile path's re-Put.
	if err := c.Put(crashRefA, blobs[crashRefA]); err != nil {
		return fmt.Errorf("Put after crash: %w", err)
	}
	data, err := c.Get(crashRefA)
	if err != nil || !bytes.Equal(data, blobs[crashRefA]) {
		return fmt.Errorf("re-Put after crash not served back: %v", err)
	}
	return nil
}

func cacheRound() harness.Round {
	return harness.Round{Workload: cacheWorkload, Verify: verifyCache}
}

// TestCrashMatrixPut crashes the cache workload at every filesystem
// operation under per-entry coin-flip directory recovery.
func TestCrashMatrixPut(t *testing.T) {
	points := harness.Matrix(t, harness.Options{Package: "./internal/schemastore"}, cacheRound)
	t.Logf("crash points exercised: %d", points)
	if points < 60 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestCrashMatrixPutDropUnsyncedDirs is the adversarial variant: every
// unsynced directory entry is dropped. This is the regression test for
// the fanout-directory fsync after the rename — without it, a crash can
// silently undo a committed Put, and with DropUnsyncedDirs the matrix
// distinguishes "undone wholesale" (legal: ErrNotFound) from "torn"
// (never legal).
func TestCrashMatrixPutDropUnsyncedDirs(t *testing.T) {
	points := harness.Matrix(t, harness.Options{
		Package:          "./internal/schemastore",
		DropUnsyncedDirs: true,
	}, cacheRound)
	t.Logf("crash points exercised: %d", points)
	if points < 60 {
		t.Errorf("crash matrix too small: %d points", points)
	}
}

// TestRenameFailureLeavesCacheUsable sweeps a rename-failure injector
// across the op range: a Put whose commit rename fails must report the
// error, leave no observable torn state, and succeed when retried.
func TestRenameFailureLeavesCacheUsable(t *testing.T) {
	blobs := compiledBlobs()
	golden := faultfs.New(faultfs.NoFaults(1))
	if err := cacheWorkload(golden); err != nil {
		t.Fatalf("golden workload: %v", err)
	}
	n := golden.OpCount()
	stride := int64(1)
	if !harness.Full() {
		stride = 2
	}
	for op := int64(0); op < n; op += stride {
		plan := faultfs.NoFaults(1)
		plan.FailRenameAtOp = op
		fsys := faultfs.New(plan)
		werr := cacheWorkload(fsys)
		fsys.ClearFaults()
		c, err := OpenFS("cache", fsys)
		if err != nil {
			t.Fatalf("op %d: reopen after rename failure: %v", op, err)
		}
		for _, ref := range []string{crashRefA, crashRefB, crashRefC} {
			data, err := c.Get(ref)
			if errors.Is(err, ErrNotFound) {
				// The failed Put's ref: retry must succeed (werr told the
				// caller to).
				if werr == nil {
					t.Fatalf("op %d: ref %s missing but the workload saw no error", op, ref)
				}
				if err := c.Put(ref, blobs[ref]); err != nil {
					t.Fatalf("op %d: retry Put(%s): %v", op, ref, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Get(%s): %v", op, ref, err)
			}
			if !bytes.Equal(data, blobs[ref]) {
				t.Fatalf("op %d: Get(%s) served torn bytes after rename failure", op, ref)
			}
		}
	}
}

// TestCorruptBlobCaughtByCodec pins the trust-nothing contract the matrix
// relies on: a blob torn below the store's atomic-commit radar (simulated
// by truncating the stored file in place) fails the codec's checksum, and
// the Delete+recompile+re-Put path restores service.
func TestCorruptBlobCaughtByCodec(t *testing.T) {
	blobs := compiledBlobs()
	fsys := faultfs.New(faultfs.NoFaults(1))
	c, err := OpenFS("cache", fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(crashRefA, blobs[crashRefA]); err != nil {
		t.Fatal(err)
	}
	// Tear the stored blob behind the cache's back.
	path := c.path(crashRefA)
	f, err := fsys.OpenFile(path, 0x2 /* os.O_RDWR */, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(len(blobs[crashRefA]) - 7)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	torn, err := c.Get(crashRefA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.UnmarshalBinary(torn); err == nil {
		t.Fatal("codec decoded a truncated blob — the CRC catch is gone")
	}
	// The documented recovery: treat as a miss, delete, recompile, re-Put.
	if err := c.Delete(crashRefA); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(crashRefA, blobs[crashRefA]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(crashRefA)
	if err != nil || !bytes.Equal(got, blobs[crashRefA]) {
		t.Fatalf("recovered Get = %d bytes, %v", len(got), err)
	}
	if _, err := core.UnmarshalBinary(got); err != nil {
		t.Fatalf("recovered blob undecodable: %v", err)
	}
}

// TestConcurrentPutGetWithFaults is the concurrent-writer harness mode
// for the cache: goroutines race Puts and Gets of the same refs while a
// sticky ENOSPC (with short writes) fires mid-stream and then clears.
// Reads must never observe torn bytes, before, during or after the
// outage; the -race CI pass runs this.
func TestConcurrentPutGetWithFaults(t *testing.T) {
	blobs := compiledBlobs()
	plan := faultfs.NoFaults(1)
	plan.ENOSPCAtOp = 40
	plan.ShortWrites = true
	plan.ENOSPCSticky = true
	fsys := faultfs.New(plan)
	c, err := OpenFS("cache", fsys)
	if err != nil {
		t.Fatal(err)
	}
	refs := []string{crashRefA, crashRefB, crashRefC}
	var wg sync.WaitGroup
	var cleared sync.Once
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref := refs[g%len(refs)]
			for i := 0; i < 25; i++ {
				if i == 12 {
					cleared.Do(fsys.ClearFaults) // the disk gets space back
				}
				_ = c.Put(ref, blobs[ref]) // ENOSPC-era Puts may fail; that's the point
				data, err := c.Get(ref)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get(%s): %v", ref, err)
					return
				}
				if err == nil && !bytes.Equal(data, blobs[ref]) {
					t.Errorf("Get(%s) observed torn bytes under concurrent faults", ref)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After the outage every ref must be servable again.
	for _, ref := range refs {
		if err := c.Put(ref, blobs[ref]); err != nil {
			t.Fatalf("post-outage Put(%s): %v", ref, err)
		}
		data, err := c.Get(ref)
		if err != nil || !bytes.Equal(data, blobs[ref]) {
			t.Fatalf("post-outage Get(%s): %d bytes, %v", ref, len(data), err)
		}
	}
}
