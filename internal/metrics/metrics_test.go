package metrics

import (
	"errors"
	"strings"
	"testing"
)

// TestWriterFormat pins the exposition wire format: HELP/TYPE once per
// family, const labels merged before per-sample labels, escaped values.
func TestWriterFormat(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, Label{Name: "instance", Value: "e1"})
	w.Counter("pv_docs_total", "Documents processed.", 42)
	w.Counter("pv_docs_total", "Documents processed.", 7, Label{Name: "kind", Value: "check"})
	w.Gauge("pv_workers", "Worker pool size.", 8)
	w.Gauge("pv_odd", `value with "quotes", \backslash and
newline`, 1.5, Label{Name: "note", Value: "a\"b\\c\nd"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pv_docs_total Documents processed.
# TYPE pv_docs_total counter
pv_docs_total{instance="e1"} 42
pv_docs_total{instance="e1",kind="check"} 7
# HELP pv_workers Worker pool size.
# TYPE pv_workers gauge
pv_workers{instance="e1"} 8
# HELP pv_odd value with "quotes", \\backslash and\nnewline
# TYPE pv_odd gauge
pv_odd{instance="e1",note="a\"b\\c\nd"} 1.5
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

// TestWriterRejectsBadNames pins name validation for metrics and labels.
func TestWriterRejectsBadNames(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Counter("1bad", "", 1)
	if w.Err() == nil {
		t.Fatal("leading-digit metric name accepted")
	}
	w2 := NewWriter(&b)
	w2.Counter("ok_total", "", 1, Label{Name: "bad-name", Value: "x"})
	if w2.Err() == nil {
		t.Fatal("hyphenated label name accepted")
	}
	w3 := NewWriter(&b)
	w3.Counter("mixed", "", 1)
	w3.Gauge("mixed", "", 2)
	if w3.Err() == nil {
		t.Fatal("family written as both counter and gauge accepted")
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("sink full")
	}
	e.n -= len(p)
	return len(p), nil
}

// TestWriterStickyError pins that the first write error sticks and
// suppresses later writes.
func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&errWriter{n: 10})
	w.Counter("a_total", "help text long enough to overflow", 1)
	w.Counter("b_total", "more", 2)
	if w.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

// TestParseRoundTrip writes an exposition and parses it back, checking
// types, help, label values, and numeric fidelity.
func TestParseRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, Label{Name: "instance", Value: "e1"})
	w.Counter("pv_docs_total", "Documents processed.", 1234567890123)
	w.Gauge("pv_busy_seconds", "Busy time.", 0.125)
	w.Gauge("pv_odd", "odd chars", 3, Label{Name: "note", Value: "a\"b\\c\nd"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	e, err := Parse([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if e.Types["pv_docs_total"] != Counter || e.Types["pv_busy_seconds"] != Gauge {
		t.Fatalf("types: %+v", e.Types)
	}
	if e.Help["pv_docs_total"] != "Documents processed." {
		t.Fatalf("help: %+v", e.Help)
	}
	if v, ok := e.Value("pv_docs_total"); !ok || v != 1234567890123 {
		t.Fatalf("pv_docs_total = %v, %v", v, ok)
	}
	if v, ok := e.Value("pv_busy_seconds"); !ok || v != 0.125 {
		t.Fatalf("pv_busy_seconds = %v, %v", v, ok)
	}
	s, ok := e.One("pv_odd")
	if !ok {
		t.Fatal("pv_odd missing")
	}
	if s.Labels["note"] != "a\"b\\c\nd" {
		t.Fatalf("label round trip: %q", s.Labels["note"])
	}
	if s.Labels["instance"] != "e1" {
		t.Fatalf("const label lost: %+v", s.Labels)
	}
	if got := s.SeriesKey(); got != `pv_odd{instance="e1",note="a\"b\\c\nd"}` {
		t.Fatalf("series key %q", got)
	}
}

// TestParseErrors pins rejection of malformed lines.
func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"pv_x\n",
		"pv_x{a=\"b\" 1\n",
		"pv_x{a=b} 1\n",
		"pv_x{1a=\"b\"} 1\n",
		"pv_x{a=\"b\\q\"} 1\n",
		"pv_x notanumber\n",
		"# TYPE pv_x\n",
		"{a=\"b\"} 1\n",
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Fatalf("parsed %q without error", bad)
		}
	}
	// Ambiguity: One must refuse when two series share a family.
	e, err := Parse([]byte("pv_x{a=\"1\"} 1\npv_x{a=\"2\"} 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.One("pv_x"); ok {
		t.Fatal("One accepted an ambiguous family")
	}
	if _, ok := e.Value("pv_missing"); ok {
		t.Fatal("Value reported a missing family")
	}
}
