// Package metrics is a dependency-free Prometheus text-format
// (version 0.0.4) exposition writer and parser. The engine's GET /metrics
// endpoint writes its counter and gauge families through Writer — one
// HELP/TYPE header per family, escaped label values, const labels (the
// engine-instance label) merged into every sample — and the parity tests
// read expositions back through Parse. Nothing here imports outside the
// standard library: the package exists precisely so the repo can expose
// first-class Prometheus metrics without adopting the client library.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Counter and Gauge are the two metric types the engine exports (the
// subset of Prometheus types a snapshot-based exporter needs).
const (
	Counter = "counter"
	Gauge   = "gauge"
)

// Label is one name="value" pair on a sample.
type Label struct {
	// Name is the label name ([a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value (arbitrary UTF-8; escaped on the wire).
	Value string
}

// Writer emits one exposition: families in the order first written, each
// with a single HELP/TYPE header, every sample carrying the writer's
// const labels. Writer is not safe for concurrent use; build one per
// scrape.
type Writer struct {
	w      io.Writer
	consts []Label
	seen   map[string]string // family -> type already emitted
	err    error
}

// NewWriter returns a Writer over w whose const labels are appended to
// every sample (the engine passes instance="<id>").
func NewWriter(w io.Writer, constLabels ...Label) *Writer {
	return &Writer{w: w, consts: constLabels, seen: map[string]string{}}
}

// Counter writes one counter sample, emitting the family's HELP/TYPE
// header on first use.
func (w *Writer) Counter(name, help string, value float64, labels ...Label) {
	w.sample(name, help, Counter, value, labels)
}

// Gauge writes one gauge sample, emitting the family's HELP/TYPE header
// on first use.
func (w *Writer) Gauge(name, help string, value float64, labels ...Label) {
	w.sample(name, help, Gauge, value, labels)
}

// Err returns the first underlying write or validation error; once set,
// further writes are dropped.
func (w *Writer) Err() error { return w.err }

func (w *Writer) sample(name, help, typ string, value float64, labels []Label) {
	if w.err != nil {
		return
	}
	if !validName(name) {
		w.err = fmt.Errorf("metrics: invalid metric name %q", name)
		return
	}
	if prev, ok := w.seen[name]; !ok {
		// HELP must not contain a newline (it would terminate the comment
		// early); escape like the exposition format prescribes.
		h := strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help)
		if _, err := fmt.Fprintf(w.w, "# HELP %s %s\n# TYPE %s %s\n", name, h, name, typ); err != nil {
			w.err = err
			return
		}
		w.seen[name] = typ
	} else if prev != typ {
		w.err = fmt.Errorf("metrics: family %s written as both %s and %s", name, prev, typ)
		return
	}
	var b strings.Builder
	b.WriteString(name)
	all := make([]Label, 0, len(labels)+len(w.consts))
	all = append(all, w.consts...)
	all = append(all, labels...)
	if len(all) > 0 {
		b.WriteByte('{')
		for i, l := range all {
			if !validName(l.Name) {
				w.err = fmt.Errorf("metrics: invalid label name %q on %s", l.Name, name)
				return
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
	if _, err := io.WriteString(w.w, b.String()); err != nil {
		w.err = err
	}
}

// formatValue renders a sample value: integral values print without an
// exponent or fraction so int64 counters survive a parse round trip.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// validName reports whether s is a legal metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Sample is one parsed series value.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels are the sample's label pairs (unescaped values).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Exposition is one parsed scrape.
type Exposition struct {
	// Types maps each family name to its TYPE ("counter"/"gauge"/...).
	Types map[string]string
	// Help maps each family name to its HELP text.
	Help map[string]string
	// Samples holds every series in document order.
	Samples []Sample
}

// One returns the single sample of a family, regardless of its labels;
// ok is false when the family is absent or has several samples.
func (e *Exposition) One(name string) (Sample, bool) {
	var found Sample
	count := 0
	for _, s := range e.Samples {
		if s.Name == name {
			found = s
			count++
		}
	}
	return found, count == 1
}

// Value returns One's value, with ok false when the family is absent or
// ambiguous.
func (e *Exposition) Value(name string) (float64, bool) {
	s, ok := e.One(name)
	return s.Value, ok
}

// Parse reads a text-format exposition — the counterpart of Writer, used
// by the /stats-parity tests and by any client that wants typed access
// to a scrape.
func Parse(data []byte) (*Exposition, error) {
	e := &Exposition{Types: map[string]string{}, Help: map[string]string{}}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("metrics: line %d: malformed TYPE comment", lineNo)
				}
				e.Types[fields[2]] = fields[3]
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				e.Help[fields[2]] = help
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseSample parses one `name{a="b",...} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ", ")
			if rest == "" {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			name := rest[:eq]
			if !validName(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			value, n, err := unescapeLabel(rest[eq+2:])
			if err != nil {
				return s, fmt.Errorf("label %s in %q: %w", name, line, err)
			}
			s.Labels[name] = value
			rest = rest[eq+2+n:]
		}
	}
	valueText := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valueText)
	}
	s.Value = v
	return s, nil
}

// unescapeLabel consumes an escaped label value up to its closing quote,
// returning the value and the bytes consumed (including the quote).
func unescapeLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// SeriesKey renders a sample's identity as name{a="b",...} with labels
// sorted by name — a stable map key for comparing two expositions.
func (s *Sample) SeriesKey() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, s.Labels[n])
	}
	b.WriteByte('}')
	return b.String()
}
