// Package validator implements standard (full) DTD validation of document
// trees — the "markup process is finished" check of Section 3.1, built on
// Glushkov automata per content model. It is both a baseline for the
// benchmarks (validation vs potential-validation cost) and the ground truth
// inside the brute-force extension-search oracle (a document is potentially
// valid iff some extension passes this checker).
package validator

import (
	"fmt"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/dtd"
)

// Validator validates documents against a DTD and designated root element.
type Validator struct {
	DTD  *dtd.DTD
	Root string
	// automata per element with Children content.
	automata map[string]*contentmodel.Automaton
	// mixedAllowed per element with Mixed content: permitted child elements.
	mixedAllowed map[string]map[string]bool
}

// New compiles the DTD's content models.
func New(d *dtd.DTD, root string) (*Validator, error) {
	if _, ok := d.Elements[root]; !ok {
		return nil, fmt.Errorf("validator: root element %q is not declared", root)
	}
	v := &Validator{
		DTD:          d,
		Root:         root,
		automata:     map[string]*contentmodel.Automaton{},
		mixedAllowed: map[string]map[string]bool{},
	}
	for _, name := range d.Order {
		decl := d.Elements[name]
		switch decl.Category {
		case dtd.Children:
			v.automata[name] = contentmodel.CompileAutomaton(decl.Model)
		case dtd.Mixed:
			allowed := map[string]bool{}
			for _, ref := range decl.Model.ElementNames() {
				allowed[ref] = true
			}
			v.mixedAllowed[name] = allowed
		}
	}
	return v, nil
}

// MustNew is New that panics on error.
func MustNew(d *dtd.DTD, root string) *Validator {
	v, err := New(d, root)
	if err != nil {
		panic(err)
	}
	return v
}

// Validate checks the whole document for validity w.r.t. the DTD and root.
// It returns nil for valid documents and a descriptive error for the first
// violation found in document order.
func (v *Validator) Validate(root *dom.Node) error {
	if root.Kind != dom.ElementNode {
		return fmt.Errorf("validator: root is not an element")
	}
	if root.Name != v.Root {
		return fmt.Errorf("validator: root element is <%s>, expected <%s>", root.Name, v.Root)
	}
	var firstErr error
	root.Walk(func(n *dom.Node) bool {
		if firstErr != nil || n.Kind != dom.ElementNode {
			return false
		}
		if err := v.validateNode(n); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// ValidateString parses and validates an XML string.
func (v *Validator) ValidateString(xml string) error {
	doc, err := dom.Parse(xml)
	if err != nil {
		return err
	}
	return v.Validate(doc.Root)
}

// IsValid is Validate as a boolean.
func (v *Validator) IsValid(root *dom.Node) bool { return v.Validate(root) == nil }

func (v *Validator) validateNode(n *dom.Node) error {
	decl := v.DTD.Elements[n.Name]
	if decl == nil {
		return fmt.Errorf("validator: element <%s> is not declared", n.Name)
	}
	switch decl.Category {
	case dtd.Empty:
		// EMPTY means no content of any kind, not even whitespace.
		for _, c := range n.Children {
			if c.Kind == dom.ElementNode || c.Kind == dom.TextNode {
				return fmt.Errorf("validator: <%s> is declared EMPTY but has content", n.Name)
			}
		}
		return nil
	case dtd.Any:
		for _, c := range n.Children {
			if c.Kind == dom.ElementNode {
				if v.DTD.Elements[c.Name] == nil {
					return fmt.Errorf("validator: <%s> (inside ANY <%s>) is not declared", c.Name, n.Name)
				}
			}
		}
		return nil
	case dtd.Mixed:
		allowed := v.mixedAllowed[n.Name]
		for _, c := range n.Children {
			if c.Kind == dom.ElementNode && !allowed[c.Name] {
				return fmt.Errorf("validator: element <%s> not permitted in mixed content of <%s>", c.Name, n.Name)
			}
		}
		return nil
	default: // Children
		var symbols []string
		for _, c := range n.Children {
			switch c.Kind {
			case dom.ElementNode:
				symbols = append(symbols, c.Name)
			case dom.TextNode:
				// XML 1.0: whitespace may appear in element content; any
				// other character data is a validity violation.
				if !isWhitespace(c.Data) {
					return fmt.Errorf("validator: character data %.20q not permitted in element content of <%s>", c.Data, n.Name)
				}
			}
		}
		if !v.automata[n.Name].Match(symbols) {
			return fmt.Errorf("validator: children of <%s> do not match its content model %s: %v",
				n.Name, decl.Model, symbols)
		}
		return nil
	}
}

func isWhitespace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
