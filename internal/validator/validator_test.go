package validator

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
)

func fig1(t *testing.T) *Validator {
	t.Helper()
	return MustNew(dtd.MustParse(dtd.Figure1), "r")
}

func TestValidExtension(t *testing.T) {
	// Figure 3's extension is valid.
	v := fig1(t)
	err := v.ValidateString(`<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`)
	if err != nil {
		t.Errorf("extension must be valid: %v", err)
	}
}

func TestExample1BothInvalid(t *testing.T) {
	// Both Example 1 encodings are invalid (that is the paper's starting
	// point); only their PV verdicts differ.
	v := fig1(t)
	for _, src := range []string{
		`<r><a><b>A quick brown</b><e></e><c>x</c> dog</a></r>`,
		`<r><a><b>A quick brown</b><c>x</c> dog<e></e></a></r>`,
	} {
		if err := v.ValidateString(src); err == nil {
			t.Errorf("%s must be invalid", src)
		}
	}
}

func TestEmptyContent(t *testing.T) {
	v := fig1(t)
	if err := v.ValidateString(`<r><a><c>x</c><d><e></e></d></a></r>`); err != nil {
		t.Errorf("want valid: %v", err)
	}
	// EMPTY element with text.
	if err := v.ValidateString(`<r><a><c>x</c><d><e>boom</e></d></a></r>`); err == nil {
		t.Error("text inside EMPTY <e> must be invalid")
	}
}

func TestElementContentWhitespace(t *testing.T) {
	// XML 1.0: whitespace is permitted in element content, other text not.
	d := dtd.MustParse(`<!ELEMENT r (x)> <!ELEMENT x EMPTY>`)
	v := MustNew(d, "r")
	if err := v.ValidateString("<r>\n  <x></x>\n</r>"); err != nil {
		t.Errorf("whitespace in element content must be allowed: %v", err)
	}
	if err := v.ValidateString("<r>boom<x></x></r>"); err == nil {
		t.Error("character data in element content must be invalid")
	}
}

func TestMixedContent(t *testing.T) {
	v := fig1(t)
	// d: (#PCDATA | e)* — text and e's in any order.
	if err := v.ValidateString(`<r><a><c>x</c><d>one<e></e>two<e></e></d></a></r>`); err != nil {
		t.Errorf("mixed content: %v", err)
	}
	// c holds only #PCDATA: element child invalid.
	if err := v.ValidateString(`<r><a><c><e></e></c><d></d></a></r>`); err == nil {
		t.Error("element in PCDATA-only content must be invalid")
	}
}

func TestAnyContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r ANY> <!ELEMENT x (#PCDATA)>`)
	v := MustNew(d, "r")
	if err := v.ValidateString(`<r>text<x>y</x><r></r></r>`); err != nil {
		t.Errorf("ANY content: %v", err)
	}
	if err := v.ValidateString(`<r><ghost></ghost></r>`); err == nil {
		t.Error("undeclared element under ANY must be invalid")
	}
}

func TestWrongRoot(t *testing.T) {
	v := fig1(t)
	if err := v.ValidateString(`<a><c>x</c><d></d></a>`); err == nil ||
		!strings.Contains(err.Error(), "root") {
		t.Errorf("want root error, got %v", err)
	}
}

func TestUndeclaredElement(t *testing.T) {
	v := fig1(t)
	if err := v.ValidateString(`<r><ghost></ghost></r>`); err == nil {
		t.Error("undeclared element must be invalid")
	}
}

func TestRepetitionBounds(t *testing.T) {
	// r -> (a+): zero a's invalid, many valid.
	v := fig1(t)
	if err := v.ValidateString(`<r></r>`); err == nil {
		t.Error("r with no a must be invalid (a+)")
	}
	ok := `<r>` + strings.Repeat(`<a><c>x</c><d></d></a>`, 5) + `</r>`
	if err := v.ValidateString(ok); err != nil {
		t.Errorf("five a's: %v", err)
	}
}

func TestValidateTree(t *testing.T) {
	v := fig1(t)
	doc := dom.MustParse(`<r><a><f><c>x</c><e></e></f><d></d></a></r>`)
	if err := v.Validate(doc.Root); err != nil {
		t.Errorf("f with (c,e): %v", err)
	}
	// Swap children of f: invalid order.
	f := doc.Root.Children[0].Children[0]
	f.Children[0], f.Children[1] = f.Children[1], f.Children[0]
	if err := v.Validate(doc.Root); err == nil {
		t.Error("(e,c) inside f must be invalid")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(dtd.MustParse(dtd.Figure1), "ghost"); err == nil {
		t.Error("unknown root must fail")
	}
}
