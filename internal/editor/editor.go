// Package editor implements a document-centric XML editing session in the
// style of xTagger ([10] in the paper): the document starts as raw text (or
// any potentially valid state) and the user layers markup over it. Every
// operation is guarded by the incremental potential-validity checks of
// Sections 2 and 4 — an operation that would make the document impossible
// to complete into a valid one is refused — so the session maintains the
// invariant that the working document is always potentially valid.
package editor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dom"
)

// OpKind identifies an editing operation.
type OpKind int

const (
	// OpInsertMarkup wraps a consecutive child range in a new element.
	OpInsertMarkup OpKind = iota
	// OpDeleteMarkup unwraps an element into its parent.
	OpDeleteMarkup
	// OpInsertText creates a new text node.
	OpInsertText
	// OpUpdateText replaces the characters of an existing text node.
	OpUpdateText
	// OpDeleteText removes a text node entirely.
	OpDeleteText
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpInsertMarkup:
		return "insert-markup"
	case OpDeleteMarkup:
		return "delete-markup"
	case OpInsertText:
		return "insert-text"
	case OpUpdateText:
		return "update-text"
	case OpDeleteText:
		return "delete-text"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Stats counts session activity.
type Stats struct {
	Applied int // operations that passed the guard and were applied
	Refused int // operations refused by the potential-validity guard
	ByKind  map[OpKind]int
	Checks  int // incremental guard checks performed
}

// Session is a guarded editing session over one document.
type Session struct {
	schema *core.Schema
	root   *dom.Node
	stats  Stats
	undo   []func()
}

// NewSession starts a session on a document that must already be
// potentially valid (e.g. the bare <root>text</root> starting point of a
// document-centric encoding project).
func NewSession(schema *core.Schema, root *dom.Node) (*Session, error) {
	if v := schema.CheckDocument(root); v != nil {
		return nil, fmt.Errorf("editor: initial document is not potentially valid: %v", v)
	}
	return &Session{schema: schema, root: root, stats: Stats{ByKind: map[OpKind]int{}}}, nil
}

// Root returns the document being edited.
func (s *Session) Root() *dom.Node { return s.root }

// Schema returns the schema guarding the session.
func (s *Session) Schema() *core.Schema { return s.schema }

// Stats returns a copy of the session counters.
func (s *Session) Stats() Stats {
	out := s.stats
	out.ByKind = make(map[OpKind]int, len(s.stats.ByKind))
	for k, v := range s.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

func (s *Session) refuse(kind OpKind, err error) error {
	s.stats.Refused++
	return fmt.Errorf("editor: %s refused: %w", kind, err)
}

func (s *Session) applied(kind OpKind, inverse func()) {
	s.stats.Applied++
	s.stats.ByKind[kind]++
	s.undo = append(s.undo, inverse)
}

// InsertMarkup wraps children [i, j) of parent in a new element named name.
// Guard: two ECPV checks (Section 4). Returns the new element.
func (s *Session) InsertMarkup(parent *dom.Node, i, j int, name string) (*dom.Node, error) {
	s.stats.Checks++
	if err := s.schema.CanInsertMarkup(parent, i, j, name); err != nil {
		return nil, s.refuse(OpInsertMarkup, err)
	}
	elem := parent.WrapChildren(i, j, name)
	s.applied(OpInsertMarkup, func() { elem.Unwrap() })
	return elem, nil
}

// DeleteMarkup unwraps element n. Guard: always allowed on non-root
// elements (Theorem 2).
func (s *Session) DeleteMarkup(n *dom.Node) error {
	s.stats.Checks++
	if err := s.schema.CanDeleteMarkup(n); err != nil {
		return s.refuse(OpDeleteMarkup, err)
	}
	parent := n.Parent
	at := parent.ChildIndex(n)
	count := len(n.Children)
	n.Unwrap()
	s.applied(OpDeleteMarkup, func() {
		restored := parent.WrapChildren(at, at+count, n.Name)
		restored.Attrs = n.Attrs
	})
	return nil
}

// InsertText creates a new text node at child index i of parent. Guard:
// Proposition 3's O(1) reachability check.
func (s *Session) InsertText(parent *dom.Node, i int, text string) (*dom.Node, error) {
	s.stats.Checks++
	if err := s.schema.CanInsertText(parent); err != nil {
		return nil, s.refuse(OpInsertText, err)
	}
	if i < 0 || i > len(parent.Children) {
		return nil, s.refuse(OpInsertText, fmt.Errorf("index %d out of range", i))
	}
	node := dom.NewText(text)
	parent.InsertChild(i, node)
	s.applied(OpInsertText, func() {
		parent.RemoveChildAt(parent.ChildIndex(node))
	})
	return node, nil
}

// UpdateText replaces the characters of text node n. Guard: always allowed
// (Theorem 2).
func (s *Session) UpdateText(n *dom.Node, text string) error {
	s.stats.Checks++
	if err := s.schema.CanUpdateText(n); err != nil {
		return s.refuse(OpUpdateText, err)
	}
	old := n.Data
	n.Data = text
	s.applied(OpUpdateText, func() { n.Data = old })
	return nil
}

// DeleteText removes text node n entirely — a character-data deletion,
// which preserves potential validity (Theorem 2).
func (s *Session) DeleteText(n *dom.Node) error {
	s.stats.Checks++
	if n.Kind != dom.TextNode || n.Parent == nil {
		return s.refuse(OpDeleteText, fmt.Errorf("not a deletable text node"))
	}
	parent := n.Parent
	at := parent.ChildIndex(n)
	parent.RemoveChildAt(at)
	s.applied(OpDeleteText, func() { parent.InsertChild(at, n) })
	return nil
}

// Undo reverts the most recent applied operation. It returns false when
// there is nothing to undo.
func (s *Session) Undo() bool {
	if len(s.undo) == 0 {
		return false
	}
	last := s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	last()
	return true
}

// Check re-verifies the whole document; the session invariant means it
// should always return nil — exposed for tests and paranoia.
func (s *Session) Check() error {
	if v := s.schema.CheckDocument(s.root); v != nil {
		return fmt.Errorf("editor: invariant broken: %v", v)
	}
	return nil
}
