package editor

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/validator"
)

func newFigure1Session(t *testing.T, src string) *Session {
	t.Helper()
	s := core.MustCompile(dtd.MustParse(dtd.Figure1), "r", core.Options{})
	doc := dom.MustParse(src)
	sess, err := NewSession(s, doc.Root)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestEncodeExample1FromScratch(t *testing.T) {
	// The introduction's workflow: the phrase exists first, markup is
	// layered over it, ending at the valid Figure 3 document.
	sess := newFigure1Session(t, `<r>A quick brown fox jumps over a lazy dog</r>`)
	r := sess.Root()

	// Wrap everything in <a>.
	a, err := sess.InsertMarkup(r, 0, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Split the text into the pieces to mark up. (The editor layer works on
	// whole nodes; a text split is update+insert.)
	text := a.Children[0]
	if err := sess.UpdateText(text, "A quick brown"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InsertText(a, 1, " fox jumps over a lazy"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InsertText(a, 2, " dog"); err != nil {
		t.Fatal(err)
	}
	// Mark up the pieces: b around the first, c around the second.
	if _, err := sess.InsertMarkup(a, 0, 1, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InsertMarkup(a, 1, 2, "c"); err != nil {
		t.Fatal(err)
	}
	// d inside b, and d around the trailing text.
	b := a.Children[0]
	if _, err := sess.InsertMarkup(b, 0, 1, "d"); err != nil {
		t.Fatal(err)
	}
	d2, err := sess.InsertMarkup(a, 2, 3, "d")
	if err != nil {
		t.Fatal(err)
	}
	// <e/> at the end of the trailing d.
	if _, err := sess.InsertMarkup(d2, 1, 1, "e"); err != nil {
		t.Fatal(err)
	}

	if err := sess.Check(); err != nil {
		t.Fatal(err)
	}
	// The final document is fully valid — the encoding is complete.
	v := validator.MustNew(dtd.MustParse(dtd.Figure1), "r")
	if err := v.Validate(sess.Root()); err != nil {
		t.Errorf("final document not valid: %v\n%s", err, sess.Root())
	}
	want := `<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`
	if got := sess.Root().String(); got != want {
		t.Errorf("final document = %s\nwant             %s", got, want)
	}
	stats := sess.Stats()
	if stats.Refused != 0 {
		t.Errorf("refused %d ops in a clean workflow", stats.Refused)
	}
	if stats.ByKind[OpInsertMarkup] != 6 {
		t.Errorf("insert-markup count = %d, want 6", stats.ByKind[OpInsertMarkup])
	}
}

func TestGuardRefusesBadMarkup(t *testing.T) {
	// Example 1's w: inserting <e/> between b and c is exactly the edit
	// that makes the document impossible to complete — the guard refuses.
	sess := newFigure1Session(t, `<r><a><b>A quick brown</b><c> fox</c> dog</a></r>`)
	a := sess.Root().Children[0]
	if _, err := sess.InsertMarkup(a, 1, 1, "e"); err == nil {
		t.Fatal("inserting <e/> before <c> must be refused (would create Example 1's w)")
	}
	// The same <e/> at the end is fine (Example 1's s).
	if _, err := sess.InsertMarkup(a, 3, 3, "e"); err != nil {
		t.Fatalf("inserting <e/> at the end must be allowed: %v", err)
	}
	if err := sess.Check(); err != nil {
		t.Fatal(err)
	}
	stats := sess.Stats()
	if stats.Refused != 1 || stats.Applied != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestGuardRefusesTextWhereImpossible(t *testing.T) {
	sess := newFigure1Session(t, `<r><a><c>x</c><d><e></e></d></a></r>`)
	d := sess.Root().Children[0].Children[1]
	e := d.Children[0]
	// Text inside <e> (EMPTY) is impossible.
	if _, err := sess.InsertText(e, 0, "boom"); err == nil {
		t.Error("text under <e> must be refused")
	}
	// Text inside <d> is fine (mixed content).
	if _, err := sess.InsertText(d, 1, "fine"); err != nil {
		t.Errorf("text under <d>: %v", err)
	}
}

func TestDeleteMarkupAlwaysAllowed(t *testing.T) {
	sess := newFigure1Session(t, `<r><a><b><d>x</d></b><c>y</c><d>z<e></e></d></a></r>`)
	a := sess.Root().Children[0]
	b := a.Children[0]
	if err := sess.DeleteMarkup(b); err != nil {
		t.Fatal(err)
	}
	if err := sess.Check(); err != nil {
		t.Fatal(err)
	}
	if err := sess.DeleteMarkup(sess.Root()); err == nil {
		t.Error("root deletion must be refused")
	}
}

func TestUndo(t *testing.T) {
	src := `<r><a><c>x</c><d></d></a></r>`
	sess := newFigure1Session(t, src)
	a := sess.Root().Children[0]
	// Wrap c in b (allowed: c completes inside b via an inserted f), then
	// undo it.
	if _, err := sess.InsertMarkup(a, 0, 1, "b"); err != nil {
		t.Fatalf("wrapping c in b is PV-preserving (b ⇝ f ⇝ c): %v", err)
	}
	if !sess.Undo() {
		t.Fatal("undo failed")
	}
	if got := sess.Root().String(); got != src {
		t.Errorf("undo did not restore: %s", got)
	}
	// A text op then undo it.
	if _, err := sess.InsertText(a.Children[1], 0, "hello"); err != nil {
		t.Fatal(err)
	}
	if !sess.Undo() {
		t.Fatal("undo failed")
	}
	if got := sess.Root().String(); got != src {
		t.Errorf("undo did not restore: %s", got)
	}
	if sess.Undo() {
		t.Error("empty undo stack must return false")
	}
}

func TestUndoDeleteMarkup(t *testing.T) {
	src := `<r><a><b><d>x</d></b><c>y</c><d></d></a></r>`
	sess := newFigure1Session(t, src)
	b := sess.Root().Children[0].Children[0]
	if err := sess.DeleteMarkup(b); err != nil {
		t.Fatal(err)
	}
	if !sess.Undo() {
		t.Fatal("undo failed")
	}
	if got := sess.Root().String(); got != src {
		t.Errorf("undo did not restore: %s", got)
	}
}

func TestSessionRequiresPVStart(t *testing.T) {
	s := core.MustCompile(dtd.MustParse(dtd.Figure1), "r", core.Options{})
	doc := dom.MustParse(`<r><a><b>x</b><e></e><c>y</c></a></r>`) // Example 1's w
	if _, err := NewSession(s, doc.Root); err == nil {
		t.Error("session on a non-PV document must be refused")
	}
}

// TestRandomGuardedSessionInvariant: a random mix of guarded operations
// never breaks the session invariant (the document stays potentially
// valid), and refused operations leave the document untouched.
func TestRandomGuardedSessionInvariant(t *testing.T) {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	names := d.Names()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
		gen.Strip(rng, doc, 0.6)
		sess, err := NewSession(schema, doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for op := 0; op < 60; op++ {
			elems := doc.Elements()
			target := elems[rng.Intn(len(elems))]
			before := ""
			switch rng.Intn(5) {
			case 0:
				nc := len(target.Children)
				i := rng.Intn(nc + 1)
				j := i + rng.Intn(nc-i+1)
				before = doc.String()
				if _, err := sess.InsertMarkup(target, i, j, names[rng.Intn(len(names))]); err != nil {
					if doc.String() != before {
						t.Fatalf("seed %d: refused insert mutated the document", seed)
					}
				}
			case 1:
				if target.Parent != nil {
					_ = sess.DeleteMarkup(target)
				}
			case 2:
				before = doc.String()
				if _, err := sess.InsertText(target, rng.Intn(len(target.Children)+1), gen.RandText(rng)); err != nil {
					if doc.String() != before {
						t.Fatalf("seed %d: refused text insert mutated the document", seed)
					}
				}
			case 3:
				for _, c := range target.Children {
					if c.Kind == dom.TextNode {
						_ = sess.UpdateText(c, gen.RandText(rng))
						break
					}
				}
			default:
				if len(sess.undo) > 0 && rng.Intn(4) == 0 {
					sess.Undo()
				}
			}
			if err := doc.Validate(); err != nil {
				t.Fatalf("seed %d op %d: tree invariants: %v", seed, op, err)
			}
		}
		if err := sess.Check(); err != nil {
			t.Fatalf("seed %d: session invariant broken: %v", seed, err)
		}
	}
}

func TestStatsString(t *testing.T) {
	if !strings.Contains(OpInsertMarkup.String(), "insert-markup") {
		t.Error("OpKind.String")
	}
}
