package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness smoke test is itself a micro-benchmark")
	}
	tables := All(true)
	if len(tables) != 15 {
		t.Fatalf("want 15 tables, got %d", len(tables))
	}
	byName := map[string]*Table{}
	for _, tb := range tables {
		byName[tb.Name] = tb
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.Name)
		}
		out := tb.String()
		if !strings.Contains(out, tb.Name) {
			t.Errorf("table rendering missing name:\n%s", out)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("table %s: row width %d vs header %d", tb.Name, len(row), len(tb.Header))
			}
		}
	}
	// X6: Theorem 2 — PV rate must be 100% in every row.
	for _, row := range byName["closure"].Rows {
		if row[2] != "100%" {
			t.Errorf("closure violated: %v", row)
		}
	}
	// X3: all depth rows must accept.
	for _, row := range byName["depth"].Rows {
		if row[2] != "true" {
			t.Errorf("depth row rejected: %v", row)
		}
	}
	// X3: recognizer count grows with depth.
	var prev int
	for i, row := range byName["depth"].Rows {
		nRec, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && nRec <= prev {
			t.Errorf("recognizer count not increasing: %v", byName["depth"].Rows)
		}
		prev = nRec
	}
	// X7: every worker count must move documents; speedup is hardware
	// dependent (single-CPU CI shows ~1x), so only positivity is asserted.
	if len(byName["throughput"].Rows) != 4 {
		t.Errorf("throughput rows: %v", byName["throughput"].Rows)
	}
	for _, row := range byName["throughput"].Rows {
		dps, err := strconv.ParseFloat(row[3], 64)
		if err != nil || dps <= 0 {
			t.Errorf("throughput row has no progress: %v", row)
		}
	}
	// X8: four rows (full/pvonly × string/bytes), all making progress; the
	// byte rows must not allocate more than their string baselines (the
	// >=30% bar is enforced at full scale by TestBytePathAllocReduction in
	// internal/engine — quick-mode corpora are too small to assert it here).
	if rows := byName["bytepath"].Rows; len(rows) != 4 {
		t.Errorf("bytepath rows: %v", rows)
	} else {
		for i := 0; i < len(rows); i += 2 {
			strAllocs, err1 := strconv.ParseFloat(rows[i][5], 64)
			byteAllocs, err2 := strconv.ParseFloat(rows[i+1][5], 64)
			if err1 != nil || err2 != nil || byteAllocs > strAllocs {
				t.Errorf("bytepath %s: bytes allocate more than string: %v vs %v", rows[i][0], rows[i+1], rows[i])
			}
		}
	}
	// X9: completion moves documents at every worker count, inserts a
	// positive, worker-independent number of elements per batch (the
	// differential guarantee), and renders to JSON.
	if rows := byName["completion"].Rows; len(rows) != 4 {
		t.Errorf("completion rows: %v", rows)
	} else {
		for _, row := range rows {
			dps, err := strconv.ParseFloat(row[3], 64)
			if err != nil || dps <= 0 {
				t.Errorf("completion row has no progress: %v", row)
			}
			if row[5] != rows[0][5] || row[6] != rows[0][6] {
				t.Errorf("completion counts vary across workers: %v vs %v", row, rows[0])
			}
		}
		if ins, err := strconv.Atoi(rows[0][5]); err != nil || ins <= 0 {
			t.Errorf("completion inserted nothing: %v", rows[0])
		}
	}
	if out, err := byName["completion"].JSON(); err != nil || !strings.Contains(string(out), `"name": "completion"`) {
		t.Errorf("completion JSON: %v %s", err, out)
	}
	// X10: store-op and batch rows make progress at every shard count, and
	// the cold-start rows pin the disk tier's contract — the warm start
	// compiles nothing and rehydrates everything from disk.
	{
		rows := byName["schemastore"].Rows
		if len(rows) < 3 {
			t.Fatalf("schemastore rows: %v", rows)
		}
		var warm, cold []string
		for _, row := range rows {
			switch row[0] {
			case "coldstart/compile":
				cold = row
			case "coldstart/warmdisk":
				warm = row
			default:
				ops, err1 := strconv.ParseFloat(row[1], 64)
				dps, err2 := strconv.ParseFloat(row[3], 64)
				if err1 != nil || err2 != nil || ops <= 0 || dps <= 0 {
					t.Errorf("schemastore shard row has no progress: %v", row)
				}
			}
		}
		if cold == nil || warm == nil {
			t.Fatalf("schemastore missing cold-start rows: %v", rows)
		}
		if warm[6] != "0" {
			t.Errorf("warm disk start compiled schemas: %v", warm)
		}
		if warm[7] == "0" || cold[6] == "0" {
			t.Errorf("cold-start accounting wrong: cold %v warm %v", cold, warm)
		}
	}
	// X11: both ingest paths make progress at every worker count, and the
	// submit latency stays orders of magnitude below one corpus pass (the
	// decoupling the async path exists for).
	if rows := byName["asyncingest"].Rows; len(rows) != 4 {
		t.Errorf("asyncingest rows: %v", rows)
	} else {
		for _, row := range rows {
			syncDps, err1 := strconv.ParseFloat(row[3], 64)
			asyncDps, err2 := strconv.ParseFloat(row[4], 64)
			if err1 != nil || err2 != nil || syncDps <= 0 || asyncDps <= 0 {
				t.Errorf("asyncingest row has no progress: %v", row)
			}
			submitNs, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil || submitNs <= 0 {
				t.Errorf("asyncingest submit latency missing: %v", row)
			}
			docs, _ := strconv.Atoi(row[1])
			corpusNs := float64(docs) / asyncDps * 1e9
			if float64(submitNs) > corpusNs/2 {
				t.Errorf("submit latency %dns not decoupled from corpus pass %.0fns: %v", submitNs, corpusNs, row)
			}
		}
	}
	// X12: all three store modes move documents; the fsynced WAL cannot
	// beat the in-memory submit (submit_vs_mem >= 1) — absolute latencies
	// are disk dependent, so only the ordering is asserted.
	if rows := byName["durability"].Rows; len(rows) != 3 {
		t.Errorf("durability rows: %v", rows)
	} else {
		for _, row := range rows {
			dps, err := strconv.ParseFloat(row[4], 64)
			if err != nil || dps <= 0 {
				t.Errorf("durability row has no progress: %v", row)
			}
		}
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(rows[2][5], "x"), 64)
		if err != nil || ratio < 1 {
			t.Errorf("fsynced WAL submit faster than memory: %v", rows[2])
		}
	}
	// X13: every streaming row makes progress; the streamed file row's
	// peak heap must stay well under the read-then-check row's, which
	// carries the whole file (the bound the experiment exists to show).
	// Throughput ratios are hardware dependent and asserted only at full
	// scale (the committed bench/X13.json).
	{
		rows := byName["streaming"].Rows
		if len(rows) != 6 {
			t.Fatalf("streaming rows: %v", rows)
		}
		var readPeak, streamPeak float64
		for _, row := range rows {
			mbps, err := strconv.ParseFloat(row[3], 64)
			if err != nil || mbps <= 0 {
				t.Errorf("streaming row has no progress: %v", row)
			}
			peak, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Errorf("streaming row peak unparsable: %v", row)
			}
			switch row[1] {
			case "read-then-check":
				readPeak = peak
			case "streamed":
				streamPeak = peak
			}
		}
		if streamPeak >= readPeak/2 {
			t.Errorf("streamed peak heap %.2fMB not bounded vs read-then-check %.2fMB", streamPeak, readPeak)
		}
	}
	// X14: both modes move documents; the overhead percentage is machine
	// dependent (the <=5% bar is pinned by the committed bench/X14.json),
	// so only progress and row shape are asserted here.
	if rows := byName["receipt"].Rows; len(rows) != 2 {
		t.Errorf("receipt rows: %v", rows)
	} else {
		if rows[0][0] != "off" || rows[1][0] != "on" {
			t.Errorf("receipt mode rows out of order: %v", rows)
		}
		for _, row := range rows {
			dps, err := strconv.ParseFloat(row[3], 64)
			if err != nil || dps <= 0 {
				t.Errorf("receipt row has no progress: %v", row)
			}
		}
	}
	// X15: six rows (three mixes × fast/slow), every one making progress,
	// and the fast mode must not lose to recognizer-only on any mix — the
	// fast path is a strict optimization. The >=2x valid-heavy bar is
	// machine dependent and pinned by the committed bench/X15.json; quick
	// mode asserts ordering only.
	if rows := byName["twotier"].Rows; len(rows) != 6 {
		t.Errorf("twotier rows: %v", rows)
	} else {
		for i := 0; i < len(rows); i += 2 {
			if rows[i][1] != "fast" || rows[i+1][1] != "slow" || rows[i][0] != rows[i+1][0] {
				t.Errorf("twotier mode rows out of order: %v %v", rows[i], rows[i+1])
				continue
			}
			fastDps, err1 := strconv.ParseFloat(rows[i][4], 64)
			slowDps, err2 := strconv.ParseFloat(rows[i+1][4], 64)
			if err1 != nil || err2 != nil || fastDps <= 0 || slowDps <= 0 {
				t.Errorf("twotier rows have no progress: %v %v", rows[i], rows[i+1])
			}
			if fastDps < slowDps {
				t.Errorf("twotier %s: fast path slower than recognizer-only: %v vs %v", rows[i][0], rows[i], rows[i+1])
			}
		}
	}
	// X2: Earley must be slower than the ECRecognizer on the largest input.
	last := byName["earley"].Rows[len(byName["earley"].Rows)-1]
	fast, _ := strconv.Atoi(last[1])
	slow, _ := strconv.Atoi(last[2])
	if slow <= fast {
		t.Errorf("Earley (%d ns) not slower than ECRecognizer (%d ns)", slow, fast)
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	d := timeIt(5*time.Millisecond, func() {
		calls++
		time.Sleep(100 * time.Microsecond)
	})
	if calls < 2 {
		t.Errorf("timeIt ran only %d calls", calls)
	}
	if d <= 0 {
		t.Errorf("per-call duration %v", d)
	}
}
