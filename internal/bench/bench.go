// Package bench implements the experiment harness: one function per
// experiment (X1-X13), each regenerating the corresponding table. The
// paper (ICDE 2006) has no empirical tables — its evaluation is
// analytical — so X1-X6 measure the paper's complexity claims: linearity
// in document size (Theorem 4), the impracticality of generic Earley
// parsing on G' (Section 3.3), the k^D depth factor for PV-strong
// recursive DTDs, and the O(1) incremental update checks (Theorem 2,
// Proposition 3). X7-X13 measure the service layer: checking throughput
// vs workers, the zero-copy byte path, completion throughput vs workers,
// the sharded two-tier schema store (lock-stripe scaling + disk-cache
// cold start), the async job-queue ingest (submit latency + job
// throughput vs the synchronous batch), the job write-ahead log
// (submit latency across in-memory / unsynced-WAL / fsynced-WAL stores),
// and the bounded-memory streaming checker (chunked sliding window vs
// whole-buffer throughput and peak heap).
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/earley"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/jobs"
	"repro/internal/validator"
)

// Table is one experiment's output: a header and rows of cells, renderable
// as an aligned text table or as JSON (the bench/*.json artifacts).
type Table struct {
	Name    string     `json:"name"`
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// JSON renders the table as indented JSON.
func (t *Table) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%s\n\n", t.Name, t.Caption)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// timeIt runs fn repeatedly until ~minDuration has elapsed and returns the
// per-call duration.
func timeIt(minDuration time.Duration, fn func()) time.Duration {
	// Warm up once.
	fn()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minDuration {
			return elapsed / time.Duration(iters)
		}
		if elapsed <= 0 {
			iters *= 16
			continue
		}
		// Scale iteration count toward the budget.
		iters = int(float64(iters)*float64(minDuration)/float64(elapsed)) + 1
	}
}

func ns(d time.Duration) string { return fmt.Sprintf("%d", d.Nanoseconds()) }

// growDoc builds a valid Play-like document with approximately targetTokens
// δ_T tokens by generating and concatenating acts.
func growDoc(rng *rand.Rand, d *dtd.DTD, root string, targetTokens int) *dom.Node {
	doc := gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
	for tokenCount(doc) < targetTokens {
		more := gen.GenValid(rng, d, root, gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		// Graft more's top-level children onto doc (keeps validity for
		// models whose root repeats its children, like play (…, act+)).
		for _, c := range more.Children {
			if c.Kind == dom.ElementNode && c.Name == "act" {
				doc.Append(c.Clone())
			}
		}
		// Guarantee progress even when no act was found.
		if len(more.Children) == 0 {
			break
		}
	}
	return doc
}

// tokenCount counts δ_T tokens of a document.
func tokenCount(doc *dom.Node) int { return len(grammar.DeltaT(doc)) }

// LinearScaling is experiment X1 (Theorem 4): for a fixed DTD, the
// streaming potential-validity check over documents of growing size — the
// ns/token column must stay roughly constant.
func LinearScaling(sizes []int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	rng := rand.New(rand.NewSource(1))
	t := &Table{
		Name:    "linear",
		Caption: "X1 / Theorem 4 — streaming PV check, fixed DTD (play), time vs document size",
		Header:  []string{"tokens", "nodes", "check_ns", "ns_per_token"},
	}
	for _, target := range sizes {
		doc := growDoc(rng, d, "play", target)
		// Strip some markup so the check exercises the interesting path
		// (missing-tag recognizers), not just exact matches.
		gen.Strip(rng, doc, 0.2)
		src := doc.String()
		n := tokenCount(doc)
		per := timeIt(budget, func() {
			if err := schema.CheckStream(src); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(doc.CountNodes()), ns(per),
			fmt.Sprintf("%.1f", float64(per.Nanoseconds())/float64(n)),
		})
	}
	return t
}

// EarleyComparison is experiment X2 (Section 3.3): ECRecognizer vs the
// generic Earley parser on G' vs full validation, on the Figure 1 DTD. The
// Earley column grows superlinearly; the paper's point is that generic CFG
// parsing of the highly ambiguous G' is impractical.
func EarleyComparison(sizes []int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Figure1)
	schema := core.MustCompile(d, "r", core.Options{})
	val := validator.MustNew(d, "r")
	g, err := grammar.BuildECFG(d, "r", true)
	if err != nil {
		panic(err)
	}
	ear := earley.New(g.ToCFG())
	rng := rand.New(rand.NewSource(2))
	t := &Table{
		Name:    "earley",
		Caption: "X2 / Section 3.3 — ECRecognizer vs Earley-on-G' vs full validation (Figure 1 DTD)",
		Header:  []string{"tokens", "ecrecognizer_ns", "earley_ns", "validate_ns", "earley_items", "slowdown"},
	}
	for _, target := range sizes {
		doc := gen.GenValid(rng, d, "r", gen.DocOptions{MaxDepth: 6, MaxRepeat: 2})
		for tokenCount(doc) < target {
			more := gen.GenValid(rng, d, "r", gen.DocOptions{MaxDepth: 6, MaxRepeat: 2})
			for _, c := range more.Children {
				doc.Append(c.Clone())
			}
		}
		gen.Strip(rng, doc, 0.3)
		tokens := grammar.DeltaT(doc)
		fast := timeIt(budget, func() {
			if v := schema.CheckDocument(doc); v != nil {
				panic(v.Reason)
			}
		})
		slow := timeIt(budget, func() {
			if !ear.Recognize(tokens) {
				panic("earley rejected a PV document")
			}
		})
		_, stats := ear.RecognizeStats(tokens)
		// Full validation runs on the unstripped equivalent? Validation of
		// a stripped doc fails; time the validator on its verdict instead.
		valT := timeIt(budget, func() { _ = val.Validate(doc) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(len(tokens)), ns(fast), ns(slow), ns(valT),
			fmt.Sprint(stats.Items),
			fmt.Sprintf("%.0fx", float64(slow)/float64(fast)),
		})
	}
	return t
}

// DepthSensitivity is experiment X3 (Theorem 4's k^D factor): on the
// PV-strong recursive DTD T2, recognizing n·b content requires nested
// recognizers; cost and recognizer count grow with the depth bound.
func DepthSensitivity(depths []int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.T2)
	schema := core.MustCompile(d, "a", core.Options{MaxDepth: 64})
	t := &Table{
		Name:    "depth",
		Caption: "X3 / Theorem 4 — PV-strong DTD T2, content of D+1 b's checked at depth bound D",
		Header:  []string{"depth_D", "bs", "accept", "recognizers", "check_ns"},
	}
	for _, depth := range depths {
		nb := depth + 1 // needs exactly depth-1... keep one beyond: accepted at D=depth
		symbols := make([]core.Symbol, nb)
		for i := range symbols {
			symbols[i] = core.Elem("b")
		}
		var created int
		var accepted bool
		per := timeIt(budget, func() {
			r := schema.NewRecognizerDepth("a", depth)
			accepted = r.Recognize(symbols)
			created = r.Created()
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(nb), fmt.Sprint(accepted),
			fmt.Sprint(created), ns(per),
		})
	}
	return t
}

// DTDSize is experiment X4: time per token as the DTD grows (the k factor
// of Theorem 4), fixed document size, random PV-weak DTDs.
func DTDSize(elementCounts []int, tokens int, budget time.Duration) *Table {
	t := &Table{
		Name:    "dtdsize",
		Caption: "X4 / Theorem 4 — cost vs DTD size k (random PV-weak DTDs, fixed ~tokens)",
		Header:  []string{"elements_m", "k", "class", "tokens", "check_ns", "ns_per_token"},
	}
	for _, m := range elementCounts {
		rng := rand.New(rand.NewSource(int64(m)))
		d := gen.RandDTD(rng, gen.DTDOptions{Elements: m, Class: gen.ClassWeak})
		schema := core.MustCompile(d, "e0", core.Options{})
		doc := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
		// Grow by appending extra instances of the root's children; the
		// ClassWeak root model ends in a star-group, so the result stays
		// potentially valid (verified, reverting the last append if not).
		for attempts := 0; tokenCount(doc) < tokens && attempts < 10_000; attempts++ {
			more := gen.GenValid(rng, d, "e0", gen.DocOptions{MaxDepth: 8})
			src := doc.Children
			grew := false
			for _, c := range more.Children {
				if c.Kind == dom.ElementNode {
					doc.Append(c.Clone())
					grew = true
				}
			}
			if !grew && len(src) > 0 {
				for _, c := range src {
					if c.Kind == dom.ElementNode {
						doc.Append(c.Clone())
						grew = true
						break
					}
				}
			}
			if !grew {
				break
			}
			if schema.CheckDocument(doc) != nil {
				// Revert this append batch and stop growing.
				doc.Children = doc.Children[:len(src)]
				break
			}
		}
		gen.Strip(rng, doc, 0.2)
		n := tokenCount(doc)
		per := timeIt(budget, func() {
			if v := schema.CheckDocument(doc); v != nil {
				panic(v.Reason)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), fmt.Sprint(d.Size()), schema.Class().String(),
			fmt.Sprint(n), ns(per),
			fmt.Sprintf("%.1f", float64(per.Nanoseconds())/float64(n)),
		})
	}
	return t
}

// UpdateCosts is experiment X5 (Theorem 2, Proposition 3): per-operation
// guard cost vs document size. The incremental guards stay flat; the
// full-document recheck grows linearly.
func UpdateCosts(sizes []int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	rng := rand.New(rand.NewSource(3))
	t := &Table{
		Name:    "updates",
		Caption: "X5 / Thm 2, Prop 3 — incremental guard cost vs full recheck, by document size",
		Header: []string{"tokens", "text_update_ns", "text_insert_ns",
			"markup_insert_ns", "markup_delete_ns", "full_recheck_ns"},
	}
	for _, target := range sizes {
		doc := growDoc(rng, d, "play", target)
		n := tokenCount(doc)
		// Pick a line element whose first child is text (so wrapping it in
		// a stagedir passes the guard) and a text node.
		var line, text *dom.Node
		doc.Walk(func(x *dom.Node) bool {
			if line == nil && x.Kind == dom.ElementNode && x.Name == "line" &&
				len(x.Children) > 0 && x.Children[0].Kind == dom.TextNode {
				line = x
			}
			if text == nil && x.Kind == dom.TextNode {
				text = x
			}
			return line == nil || text == nil
		})
		if line == nil || text == nil {
			panic("no line/text in generated play")
		}
		tUpd := timeIt(budget, func() {
			if err := schema.CanUpdateText(text); err != nil {
				panic(err)
			}
		})
		tIns := timeIt(budget, func() {
			if err := schema.CanInsertText(line); err != nil {
				panic(err)
			}
		})
		tMk := timeIt(budget, func() {
			if err := schema.CanInsertMarkup(line, 0, 1, "stagedir"); err != nil {
				panic(err)
			}
		})
		tDel := timeIt(budget, func() {
			if err := schema.CanDeleteMarkup(line); err != nil {
				panic(err)
			}
		})
		tFull := timeIt(budget, func() {
			if v := schema.CheckDocument(doc); v != nil {
				panic(v.Reason)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ns(tUpd), ns(tIns), ns(tMk), ns(tDel), ns(tFull),
		})
	}
	return t
}

// StripClosure is experiment X6 (Theorem 2): stripping random tag subsets
// from valid documents always yields potentially valid documents, across
// strip fractions; reports the PV rate (must be 100%) and check cost.
func StripClosure(fractions []float64, trials int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	schema := core.MustCompile(d, "play", core.Options{})
	t := &Table{
		Name:    "closure",
		Caption: "X6 / Theorem 2 — PV rate of tag-stripped valid documents (must be 100%)",
		Header:  []string{"strip_fraction", "trials", "pv_rate", "avg_removed", "avg_check_ns"},
	}
	for _, frac := range fractions {
		pv, removedSum := 0, 0
		var totalNs int64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + int64(frac*1000)))
			doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8})
			removedSum += gen.Strip(rng, doc, frac)
			start := time.Now()
			ok := schema.CheckDocument(doc) == nil
			totalNs += time.Since(start).Nanoseconds()
			if ok {
				pv++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", frac), fmt.Sprint(trials),
			fmt.Sprintf("%.0f%%", 100*float64(pv)/float64(trials)),
			fmt.Sprintf("%.1f", float64(removedSum)/float64(trials)),
			fmt.Sprint(totalNs / int64(trials)),
		})
	}
	return t
}

// Throughput is experiment X7 (the concurrent engine): batch-checking
// documents/sec and MB/sec as the worker count grows, over a mixed corpus
// (valid, tag-stripped and corrupted play documents) — the scale-out story
// the engine exists for. Speedup is relative to the first worker count.
// On a single-CPU host the column stays flat; the experiment still reports
// the scaling honestly.
func Throughput(workerCounts []int, corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(4))
	docs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
		corpusBytes += int64(len(docs[i].Content))
	}
	t := &Table{
		Name:    "throughput",
		Caption: "X7 / engine — batch checking throughput vs worker count (mixed play corpus)",
		Header:  []string{"workers", "corpus_docs", "batches", "docs_per_sec", "mb_per_sec", "speedup"},
	}
	var base float64
	for _, w := range workerCounts {
		e := engine.New(engine.Config{Workers: w})
		s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
		if err != nil {
			panic(err)
		}
		e.CheckBatch(s, docs) // warm up (pools, page cache)
		batches := 0
		start := time.Now()
		for time.Since(start) < budget {
			if _, stats := e.CheckBatch(s, docs); stats.Malformed != 0 {
				panic("play corpus contains malformed documents")
			}
			batches++
		}
		elapsed := time.Since(start)
		dps := float64(batches*len(docs)) / elapsed.Seconds()
		mbps := float64(batches) * float64(corpusBytes) / (1 << 20) / elapsed.Seconds()
		if base == 0 {
			base = dps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(len(docs)), fmt.Sprint(batches),
			fmt.Sprintf("%.0f", dps), fmt.Sprintf("%.2f", mbps),
			fmt.Sprintf("%.2fx", dps/base),
		})
	}
	return t
}

// BytePath is experiment X8 (the zero-copy ingest refactor): CheckBatch
// over the same mixed corpus submitted on the string path versus the
// []byte path, in both verdict modes, measuring throughput and
// allocations per document. The acceptance bar for the refactor is >=30%
// fewer allocs/op on the byte path; the pvonly mode shows the pure
// streaming-checker delta (no tree parse on either side).
func BytePath(corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(8))
	strDocs := make([]engine.Doc, corpusSize)
	byteDocs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for i := range strDocs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		src := doc.String()
		strDocs[i] = engine.Doc{ID: fmt.Sprint(i), Content: src}
		byteDocs[i] = engine.Doc{ID: fmt.Sprint(i), Bytes: []byte(src)}
		corpusBytes += int64(len(src))
	}
	t := &Table{
		Name:    "bytepath",
		Caption: "X8 / zero-copy ingest — string vs []byte CheckBatch (mixed play corpus)",
		Header:  []string{"mode", "path", "corpus_docs", "docs_per_sec", "mb_per_sec", "allocs_per_doc", "alloc_reduction"},
	}
	for _, mode := range []struct {
		name   string
		pvOnly bool
	}{{"full", false}, {"pvonly", true}} {
		var base float64
		for _, path := range []struct {
			name string
			docs []engine.Doc
		}{{"string", strDocs}, {"bytes", byteDocs}} {
			e := engine.New(engine.Config{Workers: 4, PVOnly: mode.pvOnly})
			s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
			if err != nil {
				panic(err)
			}
			e.CheckBatch(s, path.docs) // warm pools
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			batches := 0
			start := time.Now()
			for time.Since(start) < budget || batches == 0 {
				if _, stats := e.CheckBatch(s, path.docs); stats.Docs != corpusSize {
					panic("missing results")
				}
				batches++
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			allocsPerDoc := float64(ms1.Mallocs-ms0.Mallocs) / float64(batches*corpusSize)
			reduction := "baseline"
			if base == 0 {
				base = allocsPerDoc
			} else {
				reduction = fmt.Sprintf("-%.0f%%", 100*(1-allocsPerDoc/base))
			}
			t.Rows = append(t.Rows, []string{
				mode.name, path.name, fmt.Sprint(corpusSize),
				fmt.Sprintf("%.0f", float64(batches*corpusSize)/elapsed.Seconds()),
				fmt.Sprintf("%.2f", float64(batches)*float64(corpusBytes)/(1<<20)/elapsed.Seconds()),
				fmt.Sprintf("%.0f", allocsPerDoc),
				reduction,
			})
		}
	}
	return t
}

// CompletionThroughput is experiment X9 (the completion service): batched
// completion of a tag-stripped play corpus as the worker count grows — the
// repair-firehose workload CompleteBatch exists for. Three quarters of the
// corpus needs real insertions; one quarter is already valid and rides the
// validity fast path. The inserted-per-batch column is constant across
// worker counts (the differential tests pin worker-pool completions to the
// sequential results); speedup is relative to the first worker count.
func CompletionThroughput(workerCounts []int, corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(9))
	docs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 7, MaxRepeat: 2})
		if i%4 != 0 {
			gen.Strip(rng, doc, 0.3)
		}
		docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
		corpusBytes += int64(len(docs[i].Content))
	}
	t := &Table{
		Name:    "completion",
		Caption: "X9 / completion service — batched completion throughput vs worker count (tag-stripped play corpus)",
		Header: []string{"workers", "corpus_docs", "batches", "docs_per_sec", "mb_per_sec",
			"inserted_per_batch", "already_valid", "speedup"},
	}
	var base float64
	for _, w := range workerCounts {
		e := engine.New(engine.Config{Workers: w})
		s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
		if err != nil {
			panic(err)
		}
		var inserted int64
		var alreadyValid int
		if _, stats := e.CompleteBatch(s, docs, true); stats.Malformed != 0 || stats.PotentiallyValid != corpusSize {
			panic("completion corpus must be fully completable")
		} // warm up (pools, completer memos)
		batches := 0
		start := time.Now()
		for time.Since(start) < budget || batches == 0 {
			_, stats := e.CompleteBatch(s, docs, true)
			inserted = stats.Inserted
			alreadyValid = stats.Valid
			batches++
		}
		elapsed := time.Since(start)
		dps := float64(batches*len(docs)) / elapsed.Seconds()
		mbps := float64(batches) * float64(corpusBytes) / (1 << 20) / elapsed.Seconds()
		if base == 0 {
			base = dps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(len(docs)), fmt.Sprint(batches),
			fmt.Sprintf("%.0f", dps), fmt.Sprintf("%.2f", mbps),
			fmt.Sprint(inserted), fmt.Sprint(alreadyValid),
			fmt.Sprintf("%.2fx", dps/base),
		})
	}
	return t
}

// SchemaStore is experiment X10 (the sharded two-tier schema store). Part
// (a): store operation throughput (cache-hit Compile + ResolveRef from 8
// goroutines — the pure lock-stripe scaling the shards exist for) and
// mixed-schema CheckBatch throughput (every document routed by schemaRef)
// as the shard count grows, with background goroutines hammering the store
// with concurrent schema registration during the batch runs; speedups are
// relative to shards=1 (the single-mutex configuration), so the batch
// column doubles as the no-regression-at-one-shard guard. Part (b):
// cold-start cost of compiling the schema population from source versus
// rehydrating it from a warm disk cache (the disk_loads column shows the
// warm start compiling nothing).
func SchemaStore(shardCounts []int, schemaCount, corpusSize int, budget time.Duration) *Table {
	rng := rand.New(rand.NewSource(10))
	srcs := make([]string, schemaCount)
	dtds := make([]*dtd.DTD, schemaCount)
	for i := range srcs {
		dtds[i] = gen.RandDTD(rng, gen.DTDOptions{Elements: 12 + i%8, MaxChildren: 4})
		srcs[i] = dtds[i].String()
	}
	// Resolve the content-derived refs once (identical for every engine).
	refEngine := engine.New(engine.Config{})
	refs := make([]string, schemaCount)
	for i, src := range srcs {
		s, err := refEngine.Compile(engine.DTDSource, src, "e0", engine.CompileOptions{})
		if err != nil {
			panic(err)
		}
		refs[i] = s.Ref[:16]
	}
	docs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for j := range docs {
		i := j % schemaCount
		doc := gen.GenValid(rng, dtds[i], "e0", gen.DocOptions{MaxDepth: 6, MaxRepeat: 3})
		docs[j] = engine.Doc{ID: fmt.Sprint(j), Content: doc.String(), SchemaRef: refs[i]}
		corpusBytes += int64(len(docs[j].Content))
	}

	t := &Table{
		Name: "schemastore",
		Caption: fmt.Sprintf("X10 / sharded two-tier schema store — %d-schema store-op and routed-batch throughput vs shards under concurrent registration, plus cold start vs warm disk cache",
			schemaCount),
		Header: []string{"config", "store_ops_per_sec", "store_speedup", "docs_per_sec", "mb_per_sec", "batch_speedup", "compiles", "disk_loads", "cold_start_ms"},
	}

	var opsBase, base float64
	for _, shards := range shardCounts {
		e := engine.New(engine.Config{Workers: 4, Shards: shards})
		for i, src := range srcs {
			if _, err := e.Compile(engine.DTDSource, src, "e0", engine.CompileOptions{}); err != nil {
				panic(fmt.Sprintf("schema %d: %v", i, err))
			}
		}
		// Store-op throughput: 8 goroutines resolving refs (the hottest
		// store op: every routed document or micro-batch pays one) against
		// the warm store — the path the lock stripes exist to scale.
		var ops atomic.Int64
		opsStop := make(chan struct{})
		var opsWG sync.WaitGroup
		for g := 0; g < 8; g++ {
			opsWG.Add(1)
			go func(g int) {
				defer opsWG.Done()
				n := int64(0)
				for i := g; ; i++ {
					select {
					case <-opsStop:
						ops.Add(n)
						return
					default:
						if _, err := e.Registry().ResolveRef(refs[i%schemaCount]); err != nil {
							panic(err)
						}
						n++
					}
				}
			}(g)
		}
		opsStart := time.Now()
		time.Sleep(budget)
		close(opsStop)
		opsWG.Wait()
		opsPerSec := float64(ops.Load()) / time.Since(opsStart).Seconds()
		if opsBase == 0 {
			opsBase = opsPerSec
		}
		// Background registration traffic: re-Compile (cache-hit) loops that
		// contend on the store's stripes exactly like clients resending
		// schemas with every request.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; ; i++ {
					select {
					case <-stop:
						return
					default:
						src := srcs[i%schemaCount]
						if _, err := e.Compile(engine.DTDSource, src, "e0", engine.CompileOptions{}); err != nil {
							panic(err)
						}
					}
				}
			}(g)
		}
		if _, stats := e.CheckBatch(nil, docs); stats.RoutingErrors != 0 || stats.Malformed != 0 {
			panic("X10 corpus must route and parse cleanly")
		} // warm up (pools, routing table)
		batches := 0
		start := time.Now()
		for time.Since(start) < budget || batches == 0 {
			if _, stats := e.CheckBatch(nil, docs); stats.RoutingErrors != 0 {
				panic("routing errors mid-benchmark")
			}
			batches++
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		dps := float64(batches*len(docs)) / elapsed.Seconds()
		mbps := float64(batches) * float64(corpusBytes) / (1 << 20) / elapsed.Seconds()
		if base == 0 {
			base = dps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("shards=%d", shards),
			fmt.Sprintf("%.0f", opsPerSec), fmt.Sprintf("%.2fx", opsPerSec/opsBase),
			fmt.Sprintf("%.0f", dps), fmt.Sprintf("%.2f", mbps), fmt.Sprintf("%.2fx", dps/base),
			"-", "-", "-",
		})
	}

	// Part (b): cold start from source vs warm disk cache.
	compileAll := func(e *engine.Engine) time.Duration {
		start := time.Now()
		for _, src := range srcs {
			if _, err := e.Compile(engine.DTDSource, src, "e0", engine.CompileOptions{}); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	cold := engine.New(engine.Config{Workers: 4})
	coldElapsed := compileAll(cold)
	coldStats := cold.Store().Stats()

	dir, err := os.MkdirTemp("", "pv-x10-cache-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// VolatileJobs: only the schema tier is measured here, and the seed
	// engine stays open next to the warm one — the job WAL's single-writer
	// lock would refuse the second Open.
	seed, err := engine.Open(engine.Config{Workers: 4, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		panic(err)
	}
	compileAll(seed) // populate the disk tier
	warm, err := engine.Open(engine.Config{Workers: 4, CacheDir: dir, VolatileJobs: true})
	if err != nil {
		panic(err)
	}
	warmElapsed := compileAll(warm)
	warmStats := warm.Store().Stats()
	if warmStats.Compiles != 0 {
		panic(fmt.Sprintf("warm start compiled %d schemas, want 0", warmStats.Compiles))
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
	t.Rows = append(t.Rows,
		[]string{"coldstart/compile", "-", "-", "-", "-", "1.00x",
			fmt.Sprint(coldStats.Compiles), fmt.Sprint(coldStats.DiskLoads), ms(coldElapsed)},
		[]string{"coldstart/warmdisk", "-", "-", "-", "-",
			fmt.Sprintf("%.2fx", float64(coldElapsed)/float64(warmElapsed)),
			fmt.Sprint(warmStats.Compiles), fmt.Sprint(warmStats.DiskLoads), ms(warmElapsed)},
	)
	return t
}

// AsyncIngest is experiment X11 (the async job-queue ingest): submit
// latency and end-to-end throughput of the job path (SubmitCheckBatch →
// poll → results, the machinery behind POST /batch?async=1) versus the
// synchronous CheckBatch at equal worker counts, over the X7 mixed play
// corpus. Submit latency is what an HTTP client pays before its 202 —
// near-constant and tiny, independent of corpus size, which is the point
// of async ingest: arrival is decoupled from verdict production. The
// end-to-end column shows what the decoupling costs: job chunking adds
// bounded overhead over the synchronous batch (the async_vs_sync ratio).
func AsyncIngest(workerCounts []int, corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(11))
	docs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
		corpusBytes += int64(len(docs[i].Content))
	}
	t := &Table{
		Name:    "asyncingest",
		Caption: "X11 / async ingest — job submit latency and end-to-end async throughput vs synchronous CheckBatch (mixed play corpus)",
		Header: []string{"workers", "corpus_docs", "submit_ns", "sync_docs_per_sec",
			"async_docs_per_sec", "async_mb_per_sec", "async_vs_sync"},
	}
	for _, w := range workerCounts {
		e := engine.New(engine.Config{Workers: w, JobWorkers: 2, JobQueueDepth: 16})
		s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
		if err != nil {
			panic(err)
		}
		e.CheckBatch(s, docs) // warm up (pools, page cache)

		// Synchronous baseline at this worker count.
		syncBatches := 0
		start := time.Now()
		for time.Since(start) < budget || syncBatches == 0 {
			if _, stats := e.CheckBatch(s, docs); stats.Malformed != 0 {
				panic("play corpus contains malformed documents")
			}
			syncBatches++
		}
		syncDps := float64(syncBatches*len(docs)) / time.Since(start).Seconds()

		// Async path: submit latency is measured alone; the wait to Done
		// makes the loop's wall clock the end-to-end throughput. Finished
		// jobs are removed immediately so retention never skews the loop.
		var submitNs int64
		asyncRuns := 0
		start = time.Now()
		for time.Since(start) < budget || asyncRuns == 0 {
			t0 := time.Now()
			job, err := e.SubmitCheckBatch(s, docs)
			if err != nil {
				panic(err)
			}
			submitNs += time.Since(t0).Nanoseconds()
			<-job.Done()
			if job.State() != jobs.Done {
				panic(fmt.Sprintf("async job ended %v", job.State()))
			}
			e.Jobs().Remove(job.ID())
			asyncRuns++
		}
		asyncElapsed := time.Since(start)
		asyncDps := float64(asyncRuns*len(docs)) / asyncElapsed.Seconds()
		asyncMBps := float64(asyncRuns) * float64(corpusBytes) / (1 << 20) / asyncElapsed.Seconds()
		e.Close()

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(len(docs)),
			fmt.Sprint(submitNs / int64(asyncRuns)),
			fmt.Sprintf("%.0f", syncDps), fmt.Sprintf("%.0f", asyncDps),
			fmt.Sprintf("%.2f", asyncMBps),
			fmt.Sprintf("%.2fx", asyncDps/syncDps),
		})
	}
	return t
}

// Durability is experiment X12 (durable jobs): async submit latency and
// end-to-end job throughput across the three job-store modes — in-memory
// (the zero-config default), write-ahead log without the per-submit fsync,
// and the WAL with fsync-on-submit (the disk-backed default). The fsync is
// the price of a crash-safe 202: a submission is on disk before the client
// hears "accepted", so a killed process re-runs it on restart. The
// unsynced WAL shows what that fsync costs in isolation — it still
// survives a process kill (the page cache outlives the process), only a
// machine crash can drop its tail.
func Durability(corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(12))
	docs := make([]engine.Doc, corpusSize)
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		if i%3 == 1 {
			gen.Strip(rng, doc, 0.3)
		}
		docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
	}
	t := &Table{
		Name: "durability",
		Caption: "X12 / durable jobs — async submit latency and job throughput " +
			"across job-store modes (in-memory, WAL unsynced, WAL fsync-on-submit)",
		Header: []string{"store", "corpus_docs", "jobs", "submit_us",
			"docs_per_sec", "submit_vs_mem"},
	}
	modes := []struct {
		name         string
		volatileJobs bool
		noSync       bool
	}{
		{"mem", true, false},
		{"wal-nosync", false, true},
		{"wal-fsync", false, false},
	}
	var memSubmitUs float64
	for _, m := range modes {
		dir, err := os.MkdirTemp("", "pvbench-x12-*")
		if err != nil {
			panic(err)
		}
		// Every mode gets the same cache dir treatment so only the job
		// store varies; the schema disk tier is constant.
		e, err := engine.Open(engine.Config{
			JobWorkers:    2,
			JobQueueDepth: 16,
			CacheDir:      dir,
			VolatileJobs:  m.volatileJobs,
			JobWALNoSync:  m.noSync,
		})
		if err != nil {
			panic(err)
		}
		s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
		if err != nil {
			panic(err)
		}
		runJob := func() time.Duration {
			t0 := time.Now()
			job, err := e.SubmitCheckBatch(s, docs)
			if err != nil {
				panic(err)
			}
			submit := time.Since(t0)
			<-job.Done()
			if job.State() != jobs.Done {
				panic(fmt.Sprintf("async job ended %v", job.State()))
			}
			e.Jobs().Remove(job.ID())
			return submit
		}
		runJob() // warm up (pools, page cache, WAL segment)

		var submitNs int64
		runs := 0
		start := time.Now()
		for time.Since(start) < budget || runs == 0 {
			submitNs += runJob().Nanoseconds()
			runs++
		}
		dps := float64(runs*len(docs)) / time.Since(start).Seconds()
		e.Close()
		os.RemoveAll(dir)

		submitUs := float64(submitNs) / float64(runs) / 1e3
		if m.name == "mem" {
			memSubmitUs = submitUs
		}
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprint(len(docs)), fmt.Sprint(runs),
			fmt.Sprintf("%.1f", submitUs),
			fmt.Sprintf("%.0f", dps),
			fmt.Sprintf("%.2fx", submitUs/memSubmitUs),
		})
	}
	return t
}

// streamDTD is X13's grammar: the unbounded-log shape the streaming
// checker exists for (one star group directly under the root).
const streamDTD = `<!ELEMENT log (entry)*>
<!ELEMENT entry (msg, code)>
<!ELEMENT msg (#PCDATA)>
<!ELEMENT code (#PCDATA)>`

// StreamingMemory is experiment X13 (the bounded-memory streaming
// checker): potential-validity checking of one large document through the
// chunked sliding-window lexer vs the whole-buffer byte lexer. The
// in-memory input prices the pure lexing overhead of window refills at
// several window sizes (the acceptance bar: chunked within 15% of
// whole-buffer); the on-disk input prices the end-to-end story — RunReader
// straight off the file against read-everything-then-check — where the
// peak-heap column is the point: O(window) instead of O(document).
// peak_extra_mb is the sampled high-water HeapAlloc over the pre-run
// floor; total_alloc_mb is cumulative allocation during the measured
// passes.
func StreamingMemory(inMemMB, fileMB int, budget time.Duration) *Table {
	d := dtd.MustParse(streamDTD)
	s, err := core.Compile(d, "log", core.Options{})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(13))
	var memBuf bytes.Buffer
	if _, err := gen.StreamValid(&memBuf, rng, d, "log", gen.DocOptions{}, int64(inMemMB)<<20); err != nil {
		panic(err)
	}
	doc := memBuf.Bytes()

	f, err := os.CreateTemp("", "pv-x13-*.xml")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	fileBytes, err := gen.StreamValid(f, rng, d, "log", gen.DocOptions{}, int64(fileMB)<<20)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		panic(err)
	}

	t := &Table{
		Name: "streaming",
		Caption: fmt.Sprintf("X13 / bounded-memory streaming — chunked sliding window vs whole buffer (log grammar, %dMB in-memory + %dMB file)",
			inMemMB, fileMB),
		Header: []string{"input", "mode", "window_kb", "mb_per_sec", "peak_extra_mb", "total_alloc_mb", "vs_whole_buffer"},
	}

	checker := s.NewStreamChecker()
	// measure runs fn repeatedly under the budget (at least once), sampling
	// the heap high-water mark against a GC'd pre-run floor.
	measure := func(inputMB float64, fn func()) (mbps, peakExtraMB, allocMB float64) {
		fn() // warm: pools, lexer buffers, page cache
		var ms0, ms1, ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		floor := ms0.HeapAlloc
		var peak atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
		passes := 0
		start := time.Now()
		for time.Since(start) < budget || passes == 0 {
			fn()
			passes++
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()
		runtime.ReadMemStats(&ms1)
		extra := 0.0
		if p := peak.Load(); p > floor {
			extra = float64(p-floor) / (1 << 20)
		}
		return inputMB * float64(passes) / elapsed.Seconds(), extra,
			float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20)
	}

	addRow := func(input, mode, window string, inputMB float64, base *float64, fn func()) {
		mbps, extra, alloc := measure(inputMB, fn)
		vs := "baseline"
		if *base == 0 {
			*base = mbps
		} else {
			vs = fmt.Sprintf("%.0f%%", 100*mbps / *base)
		}
		t.Rows = append(t.Rows, []string{input, mode, window,
			fmt.Sprintf("%.0f", mbps), fmt.Sprintf("%.2f", extra), fmt.Sprintf("%.1f", alloc), vs})
	}

	memInput := fmt.Sprintf("mem-%dMB", inMemMB)
	memMB := float64(len(doc)) / (1 << 20)
	var memBase float64
	addRow(memInput, "whole-buffer", "-", memMB, &memBase, func() {
		if err := checker.RunBytes(doc); err != nil {
			panic(err)
		}
	})
	for _, winKB := range []int{64, 256, 1024} {
		win := winKB << 10
		addRow(memInput, "chunked", fmt.Sprint(winKB), memMB, &memBase, func() {
			if err := checker.RunReaderBuffer(bytes.NewReader(doc), win); err != nil {
				panic(err)
			}
		})
	}

	fileInput := fmt.Sprintf("file-%dMB", fileMB)
	fileMBf := float64(fileBytes) / (1 << 20)
	var fileBase float64
	addRow(fileInput, "read-then-check", "-", fileMBf, &fileBase, func() {
		data, err := os.ReadFile(f.Name())
		if err == nil {
			err = checker.RunBytes(data)
		}
		if err != nil {
			panic(err)
		}
	})
	addRow(fileInput, "streamed", "256", fileMBf, &fileBase, func() {
		r, err := os.Open(f.Name())
		if err == nil {
			err = checker.RunReader(r)
			r.Close()
		}
		if err != nil {
			panic(err)
		}
	})
	return t
}

// ReceiptOverhead is experiment X14 (verifiable verdict receipts):
// CheckBatch versus CheckBatchReceipt over the same mixed play corpus, on
// a memory-only engine (no anchor log — the pure commitment cost: leaf
// hashing, tree build, one proof per document). The acceptance bar for
// the feature is <=5% docs/sec overhead with receipts on; receipts are
// off by default, so the baseline row is also the no-regression witness
// for existing callers.
func ReceiptOverhead(corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(14))
	docs := make([]engine.Doc, corpusSize)
	var corpusBytes int64
	for i := range docs {
		doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
		switch i % 3 {
		case 1:
			gen.Strip(rng, doc, 0.3)
		case 2:
			gen.Corrupt(rng, d, doc)
		}
		docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
		corpusBytes += int64(len(docs[i].Content))
	}
	t := &Table{
		Name:    "receipt",
		Caption: "X14 / verdict receipts — CheckBatch vs CheckBatchReceipt (mixed play corpus, memory-only engine)",
		Header:  []string{"mode", "corpus_docs", "batches", "docs_per_sec", "mb_per_sec", "overhead_pct"},
	}
	e := engine.New(engine.Config{})
	s, err := e.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
	if err != nil {
		panic(err)
	}
	// The two modes alternate batch for batch across one shared budget
	// window, so machine drift (thermal, noisy neighbors) hits both
	// equally instead of whichever phase ran second.
	e.CheckBatch(s, docs) // warm up (pools, page cache)
	var batches [2]int
	var spent [2]time.Duration
	start := time.Now()
	for time.Since(start) < 2*budget {
		for mode := 0; mode < 2; mode++ {
			t0 := time.Now()
			if mode == 1 {
				if _, _, rec, err := e.CheckBatchReceipt(s, docs); err != nil || rec == nil {
					panic(fmt.Sprintf("receipt batch: rec=%v err=%v", rec, err))
				}
			} else {
				e.CheckBatch(s, docs)
			}
			spent[mode] += time.Since(t0)
			batches[mode]++
		}
	}
	var dps [2]float64
	for mode, name := range []string{"off", "on"} {
		dps[mode] = float64(batches[mode]*len(docs)) / spent[mode].Seconds()
		mbps := float64(batches[mode]) * float64(corpusBytes) / (1 << 20) / spent[mode].Seconds()
		overhead := "0.00"
		if mode == 1 {
			overhead = fmt.Sprintf("%.2f", (dps[0]-dps[1])/dps[0]*100)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(len(docs)), fmt.Sprint(batches[mode]),
			fmt.Sprintf("%.0f", dps[mode]), fmt.Sprintf("%.2f", mbps), overhead,
		})
	}
	return t
}

// TwoTierCheck is experiment X15 (two-tier checking): one engine with the
// content-model DFA fast path against one compiled DisableFastPath, over
// three document mixes — valid-heavy (90% fully valid: the strict-validity
// shortcut also skips the tree pass), invalid-heavy (mostly corrupted:
// checks die early in either tier), and mixed. The engines alternate batch
// for batch within each mix so machine drift hits both equally. The
// acceptance bar for the tentpole is >=2x docs/sec on the valid-heavy mix.
func TwoTierCheck(corpusSize int, budget time.Duration) *Table {
	d := dtd.MustParse(dtd.Play)
	rng := rand.New(rand.NewSource(15))
	mixes := []struct {
		name    string
		corrupt func(i int, doc *dom.Node) // mutates per the mix's ratio
	}{
		{"valid_heavy", func(i int, doc *dom.Node) {
			if i%10 == 9 {
				gen.Corrupt(rng, d, doc)
			}
		}},
		{"invalid_heavy", func(i int, doc *dom.Node) {
			if i%10 != 9 {
				gen.Corrupt(rng, d, doc)
			}
		}},
		{"mixed", func(i int, doc *dom.Node) {
			switch i % 3 {
			case 1:
				gen.Strip(rng, doc, 0.3)
			case 2:
				gen.Corrupt(rng, d, doc)
			}
		}},
	}
	t := &Table{
		Name:    "twotier",
		Caption: "X15 / two-tier checking — DFA fast path vs recognizer-only (play corpus, full verdicts)",
		Header:  []string{"mix", "mode", "corpus_docs", "batches", "docs_per_sec", "mb_per_sec", "speedup"},
	}
	fast := engine.New(engine.Config{})
	slow := engine.New(engine.Config{DisableFastPath: true})
	fs, err := fast.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
	if err != nil {
		panic(err)
	}
	ss, err := slow.Compile(engine.DTDSource, dtd.Play, "play", engine.CompileOptions{})
	if err != nil {
		panic(err)
	}
	for _, mix := range mixes {
		docs := make([]engine.Doc, corpusSize)
		var corpusBytes int64
		for i := range docs {
			doc := gen.GenValid(rng, d, "play", gen.DocOptions{MaxDepth: 8, MaxRepeat: 3})
			mix.corrupt(i, doc)
			docs[i] = engine.Doc{ID: fmt.Sprint(i), Content: doc.String()}
			corpusBytes += int64(len(docs[i].Content))
		}
		fast.CheckBatch(fs, docs) // warm up both engines' pools
		slow.CheckBatch(ss, docs)
		var batches [2]int
		var spent [2]time.Duration
		start := time.Now()
		for time.Since(start) < 2*budget {
			for mode := 0; mode < 2; mode++ {
				t0 := time.Now()
				if mode == 0 {
					fast.CheckBatch(fs, docs)
				} else {
					slow.CheckBatch(ss, docs)
				}
				spent[mode] += time.Since(t0)
				batches[mode]++
			}
		}
		var dps [2]float64
		for mode := range dps {
			dps[mode] = float64(batches[mode]*len(docs)) / spent[mode].Seconds()
		}
		for mode, name := range []string{"fast", "slow"} {
			mbps := float64(batches[mode]) * float64(corpusBytes) / (1 << 20) / spent[mode].Seconds()
			speedup := "1.00"
			if mode == 0 {
				speedup = fmt.Sprintf("%.2f", dps[0]/dps[1])
			}
			t.Rows = append(t.Rows, []string{
				mix.name, name, fmt.Sprint(len(docs)), fmt.Sprint(batches[mode]),
				fmt.Sprintf("%.0f", dps[mode]), fmt.Sprintf("%.2f", mbps), speedup,
			})
		}
	}
	return t
}

// All runs every experiment with defaults scaled by quick (smaller sizes
// for tests).
func All(quick bool) []*Table {
	budget := 50 * time.Millisecond
	linSizes := []int{1000, 4000, 16000, 64000, 256000}
	earSizes := []int{8, 16, 32, 64, 128}
	depths := []int{2, 4, 8, 16, 24}
	dtdSizes := []int{8, 16, 32, 64}
	updSizes := []int{1000, 8000, 64000}
	fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	trials := 40
	workerCounts := []int{1, 2, 4, 8}
	corpus := 256
	tputBudget := 250 * time.Millisecond
	streamMemMB, streamFileMB := 8, 32
	if quick {
		budget = 2 * time.Millisecond
		linSizes = []int{500, 2000, 8000}
		earSizes = []int{8, 16, 32}
		depths = []int{2, 4, 8}
		dtdSizes = []int{8, 16}
		updSizes = []int{500, 4000}
		trials = 5
		corpus = 48
		tputBudget = 10 * time.Millisecond
		streamMemMB, streamFileMB = 2, 4
	}
	schemaCount := 16
	if quick {
		schemaCount = 6
	}
	return []*Table{
		LinearScaling(linSizes, budget),
		EarleyComparison(earSizes, budget),
		DepthSensitivity(depths, budget),
		DTDSize(dtdSizes, 4000, budget),
		UpdateCosts(updSizes, budget),
		StripClosure(fracs, trials, budget),
		Throughput(workerCounts, corpus, tputBudget),
		BytePath(corpus, tputBudget),
		CompletionThroughput(workerCounts, corpus, tputBudget),
		SchemaStore([]int{1, 2, 4, 8}, schemaCount, corpus, tputBudget),
		AsyncIngest(workerCounts, corpus, tputBudget),
		Durability(corpus, tputBudget),
		StreamingMemory(streamMemMB, streamFileMB, tputBudget),
		ReceiptOverhead(corpus, tputBudget),
		TwoTierCheck(corpus, tputBudget),
	}
}
