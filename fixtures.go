package pv

import "repro/internal/dtd"

// Fixture DTDs from the paper and for the examples, re-exported so that
// downstream users and the runnable examples need only this package.
const (
	// Figure1DTD is the sample DTD of the paper's Figure 1 (root r).
	Figure1DTD = dtd.Figure1
	// T1DTD is the PV-strong recursive DTD of Example 5 (root a).
	T1DTD = dtd.T1
	// T2DTD is the PV-strong recursive DTD of Example 6 (root a).
	T2DTD = dtd.T2
	// InlineDTD is an XHTML-style PV-weak recursive inline-markup DTD
	// (root p).
	InlineDTD = dtd.WeakRecursive
	// PlayDTD is a Shakespeare-play digital-library DTD (root play).
	PlayDTD = dtd.Play
	// TEILiteDTD is a TEI-Lite flavored scholarly-encoding DTD (root TEI).
	TEILiteDTD = dtd.TEILite
	// ArticleDTD is a TEI/DocBook-flavored article DTD (root article).
	ArticleDTD = dtd.Article
)
