// Recursive: the paper's three DTD classes and the depth bound that tames
// PV-strong recursion (Section 4.3.1, Examples 5-6, Figure 7).
//
// Run: go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	"repro"
)

func check(schema *pv.Schema, xml string) string {
	res, err := schema.CheckString(xml)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Valid:
		return "valid"
	case res.PotentiallyValid:
		return "potentially valid"
	default:
		return "NOT potentially valid"
	}
}

func main() {
	// Non-recursive: the Figure 1 DTD.
	fig1, err := pv.CompileDTD(pv.Figure1DTD, "r", pv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 DTD:", fig1.Info())

	// PV-weak recursive: XHTML-style inline markup. <b> inside <i> inside
	// <b> — recursion flows through star-groups only, and reachability
	// resolves everything with no nested recognizers.
	inline, err := pv.CompileDTD(pv.InlineDTD, "p", pv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInline DTD:  ", inline.Info())
	nested := `<p>plain <b>bold <i>both <b>bold again</b></i></b> tail</p>`
	fmt.Printf("  %-58s -> %s\n", nested, check(inline, nested))

	// PV-strong recursive: Example 6's T2. Under T2, n b's under <a> need
	// n-2 nested <a> insertions; the recognizer explores them through
	// nested recognizer objects bounded by the depth parameter. Figure 7
	// shows what happens without the bound on T1: an infinite chain.
	for _, maxDepth := range []int{4, 8} {
		t2, err := pv.CompileDTD(pv.T2DTD, "a", pv.Options{MaxDepth: maxDepth})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nT2 DTD (MaxDepth=%d): %s\n", maxDepth, t2.Info())
		for n := 2; n <= 10; n += 2 {
			doc := "<a>"
			for i := 0; i < n; i++ {
				doc += "<b></b>"
			}
			doc += "</a>"
			fmt.Printf("  %2d b's -> %s\n", n, check(t2, doc))
		}
	}
	fmt.Println("\n(The depth bound is the completeness/termination trade-off of Section")
	fmt.Println(" 4.3.1: documents needing extensions deeper than MaxDepth are rejected;")
	fmt.Println(" real document-centric depths are single-digit, so a small bound is safe.)")
}
