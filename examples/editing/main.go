// Editing: the xTagger workflow the paper was built for. The text of the
// phrase exists before any markup; an editor layers tags over it one
// operation at a time. Every operation is guarded by the incremental
// potential-validity checks — mistakes are refused at the moment they are
// attempted, with the document still completable afterward.
//
// Run: go run ./examples/editing
package main

import (
	"fmt"
	"log"

	"repro"
)

func step(what string, err error) {
	if err != nil {
		fmt.Printf("  ✗ %-46s REFUSED: %v\n", what, err)
		return
	}
	fmt.Printf("  ✓ %s\n", what)
}

func main() {
	schema, err := pv.CompileDTD(pv.Figure1DTD, "r", pv.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Day 0 of the encoding project: raw text inside the root element.
	doc := pv.MustParseDocument(`<r>A quick brown fox jumps over a lazy dog</r>`)
	sess, err := schema.NewSession(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("start:", doc)
	fmt.Println()

	r := doc.Root()
	a, err := sess.InsertMarkup(r, 0, 1, "a")
	step("wrap everything in <a>", err)

	// Split the text into the three pieces to be marked up.
	text := a.Child(0)
	step(`shrink text to "A quick brown"`, sess.UpdateText(text, "A quick brown"))
	_, err = sess.InsertText(a, 1, " fox jumps over a lazy")
	step("insert middle text", err)
	_, err = sess.InsertText(a, 2, " dog")
	step("insert trailing text", err)

	_, err = sess.InsertMarkup(a, 0, 1, "b")
	step("wrap first piece in <b>", err)
	_, err = sess.InsertMarkup(a, 1, 2, "c")
	step("wrap second piece in <c>", err)

	// The Example 1 mistake: an <e/> between <b> and <c>. The guard knows
	// no completion exists and refuses — this is exactly the string w.
	_, err = sess.InsertMarkup(a, 1, 1, "e")
	step("insert <e/> between <b> and <c>  (the w mistake)", err)

	// The correct placements.
	b := a.Child(0)
	_, err = sess.InsertMarkup(b, 0, 1, "d")
	step("wrap b's text in <d>", err)
	d2, err := sess.InsertMarkup(a, 2, 3, "d")
	step("wrap trailing text in <d>", err)
	_, err = sess.InsertMarkup(d2, 1, 1, "e")
	step("append <e/> inside the trailing <d>", err)

	fmt.Println()
	fmt.Println("final:", doc)
	applied, refused := sess.Stats()
	fmt.Printf("operations applied: %d, refused by the guard: %d\n", applied, refused)

	if err := schema.Validate(doc); err != nil {
		fmt.Println("document is potentially valid but not yet complete:", err)
	} else {
		fmt.Println("document is now fully VALID — the encoding is complete")
	}
}
