// Quickstart: the paper's Example 1 through the public API.
//
// Two encodings of the same phrase, both invalid w.r.t. the Figure 1 DTD —
// but one is merely incomplete (potentially valid: more markup can fix it)
// while the other hard-violates the schema (no insertion ever will).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	schema, err := pv.CompileDTD(pv.Figure1DTD, "r", pv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:", schema.Info())
	fmt.Println()

	docs := []struct{ label, xml string }{
		{"w (tags out of order)",
			`<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>`},
		{"s (encoding incomplete)",
			`<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>`},
		{"s + two <d> insertions (Figure 3)",
			`<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c><d> dog<e></e></d></a></r>`},
	}
	for _, d := range docs {
		res, err := schema.CheckString(d.xml)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s valid=%-5v potentially-valid=%-5v\n", d.label, res.Valid, res.PotentiallyValid)
		if !res.PotentiallyValid {
			fmt.Printf("%36s %s\n", "", res.Detail)
		}
	}

	fmt.Println()
	fmt.Println("O(1) update guards (Proposition 3):")
	for _, elem := range []string{"d", "c", "e"} {
		fmt.Printf("  can insert text under <%s>: %v\n", elem, schema.CanInsertText(elem))
	}
}
