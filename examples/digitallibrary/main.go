// Digitallibrary: encoding a play for a digital-library collection — the
// document-centric scenario motivating the paper's introduction. A scene's
// text exists first; markup is layered progressively. The example shows
// (a) the intermediate states are never valid yet always potentially valid,
// (b) the single-pass streaming checker on the growing document, and
// (c) the finished encoding passing full validation.
//
// Run: go run ./examples/digitallibrary
package main

import (
	"fmt"
	"log"

	"repro"
)

// The states of the encoding project, as they would be saved at the end of
// each editing day: markup accumulates over the same underlying text.
var days = []struct{ label, xml string }{
	{"raw transcription", `<play>The Tragedie of Hamlet Barnardo Francisco Whos there? Nay answer me: Stand and vnfold your selfe. Long liue the King.</play>`},

	{"title marked", `<play><title>The Tragedie of Hamlet</title> Barnardo Francisco Whos there? Nay answer me: Stand and vnfold your selfe. Long liue the King.</play>`},

	{"personae marked", `<play><title>The Tragedie of Hamlet</title><personae><persona>Barnardo</persona><persona>Francisco</persona></personae> Whos there? Nay answer me: Stand and vnfold your selfe. Long liue the King.</play>`},

	{"speeches marked", `<play><title>The Tragedie of Hamlet</title><personae><persona>Barnardo</persona><persona>Francisco</persona></personae><speech><speaker>Barnardo</speaker><line>Whos there?</line></speech><speech><speaker>Francisco</speaker><line>Nay answer me: Stand and vnfold your selfe.</line></speech><speech><speaker>Barnardo</speaker><line>Long liue the King.</line></speech></play>`},

	{"acts and scenes added", `<play><title>The Tragedie of Hamlet</title><personae><persona>Barnardo</persona><persona>Francisco</persona></personae><act><title>Actus Primus.</title><scene><title>Scoena Prima.</title><speech><speaker>Barnardo</speaker><line>Whos there?</line></speech><speech><speaker>Francisco</speaker><line>Nay answer me: Stand and vnfold your selfe.</line></speech><speech><speaker>Barnardo</speaker><line>Long liue the King.</line></speech></scene></act></play>`},
}

func main() {
	schema, err := pv.CompileDTD(pv.PlayDTD, "play", pv.Options{IgnoreWhitespaceText: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:", schema.Info())
	fmt.Println()

	for i, day := range days {
		res, err := schema.CheckString(day.xml)
		if err != nil {
			log.Fatalf("day %d: %v", i, err)
		}
		streamOK := schema.CheckStream(day.xml) == nil
		fmt.Printf("day %d  %-22s potentially-valid=%-5v valid=%-5v stream=%v\n",
			i, day.label, res.PotentiallyValid, res.Valid, streamOK)
		if !res.PotentiallyValid {
			fmt.Println("       ", res.Detail)
		}
	}

	// A careless edit: marking a persona AFTER the act markup already
	// exists, leaving it outside <personae>. Personae can only precede the
	// acts, so no amount of further markup can ever fix this — the checker
	// flags it as a hard violation, not mere incompleteness. (Contrast a
	// stray <line> before the acts: that is still potentially valid,
	// because it can hide inside an inserted act/scene/speech.)
	bad := `<play><act><title>a</title><scene><title>s</title><speech><speaker>B</speaker><line>hi</line></speech></scene></act><persona>Bernardo</persona></play>`
	res, err := schema.CheckString(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("<persona> after the acts: potentially-valid=%v\n", res.PotentiallyValid)
	if !res.PotentiallyValid {
		fmt.Println("  ", res.Detail)
	}
	stray := `<play><title>T</title><line>stray</line></play>`
	res, err = schema.CheckString(stray)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stray <line> before the acts: potentially-valid=%v (hides in an inserted act/scene/speech)\n",
		res.PotentiallyValid)

	final := days[len(days)-1].xml
	doc := pv.MustParseDocument(final)
	if err := schema.Validate(doc); err != nil {
		fmt.Println("\nfinal day document unexpectedly incomplete:", err)
	} else {
		fmt.Println("\nfinal day document passes full DTD validation — ready for the collection")
	}
}
