package pv

import (
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/editor"
)

// Document is a mutable XML document tree. Nodes are addressed by simple
// path expressions (see Node) so that callers of the public API never touch
// internal packages.
type Document struct {
	root *dom.Node
}

// ParseDocument parses an XML string into a document tree, enforcing
// well-formedness.
func ParseDocument(xml string) (*Document, error) {
	doc, err := dom.Parse(xml)
	if err != nil {
		return nil, err
	}
	return &Document{root: doc.Root}, nil
}

// ParseDocumentFile reads and parses an XML file.
func ParseDocumentFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseDocument(string(data))
}

// MustParseDocument is ParseDocument that panics on error.
func MustParseDocument(xml string) *Document {
	d, err := ParseDocument(xml)
	if err != nil {
		panic(err)
	}
	return d
}

// String serializes the document.
func (d *Document) String() string { return d.root.String() }

// Clone returns an independent deep copy.
func (d *Document) Clone() *Document { return &Document{root: d.root.Clone()} }

// Depth returns the element-nesting depth of the document.
func (d *Document) Depth() int { return d.root.Depth() }

// Content returns all character data in document order — the paper's
// content(w).
func (d *Document) Content() string { return d.root.Content() }

// Root returns the root node.
func (d *Document) Root() *Node { return &Node{n: d.root} }

// Node is a handle on a document node.
type Node struct{ n *dom.Node }

// IsElement reports whether the node is an element.
func (x *Node) IsElement() bool { return x.n.Kind == dom.ElementNode }

// IsText reports whether the node is a text node.
func (x *Node) IsText() bool { return x.n.Kind == dom.TextNode }

// Name returns the element name ("" for non-elements).
func (x *Node) Name() string {
	if x.n.Kind != dom.ElementNode {
		return ""
	}
	return x.n.Name
}

// Text returns the node's character data ("" for non-text nodes).
func (x *Node) Text() string {
	if x.n.Kind != dom.TextNode {
		return ""
	}
	return x.n.Data
}

// NumChildren returns the number of child nodes.
func (x *Node) NumChildren() int { return len(x.n.Children) }

// Child returns the i-th child.
func (x *Node) Child(i int) *Node { return &Node{n: x.n.Children[i]} }

// Parent returns the parent node, or nil at the root.
func (x *Node) Parent() *Node {
	if x.n.Parent == nil {
		return nil
	}
	return &Node{n: x.n.Parent}
}

// String serializes the subtree.
func (x *Node) String() string { return x.n.String() }

// Find returns the first element matching a simple slash path of element
// names relative to x, e.g. "act/scene/speech". An empty path returns x.
func (x *Node) Find(path string) *Node {
	cur := x.n
	if path == "" {
		return x
	}
	for _, step := range strings.Split(path, "/") {
		var next *dom.Node
		for _, c := range cur.Children {
			if c.Kind == dom.ElementNode && c.Name == step {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return &Node{n: cur}
}

// Session is a guarded document-centric editing session: every operation is
// pre-checked with the paper's incremental potential-validity guards and
// refused if it would make the document impossible to complete into a valid
// one.
type Session struct {
	sess *editor.Session
	doc  *Document
}

// NewSession starts a guarded session; the document must be potentially
// valid.
func (s *Schema) NewSession(doc *Document) (*Session, error) {
	es, err := editor.NewSession(s.core, doc.root)
	if err != nil {
		return nil, err
	}
	return &Session{sess: es, doc: doc}, nil
}

// Document returns the document being edited.
func (e *Session) Document() *Document { return e.doc }

// InsertMarkup wraps children [i, j) of parent in a new element; the paper's
// markup-insertion, guarded by two ECPV checks.
func (e *Session) InsertMarkup(parent *Node, i, j int, name string) (*Node, error) {
	elem, err := e.sess.InsertMarkup(parent.n, i, j, name)
	if err != nil {
		return nil, err
	}
	return &Node{n: elem}, nil
}

// DeleteMarkup unwraps an element (always PV-preserving, Theorem 2).
func (e *Session) DeleteMarkup(n *Node) error { return e.sess.DeleteMarkup(n.n) }

// InsertText creates a text node at child index i of parent (O(1) guard,
// Proposition 3).
func (e *Session) InsertText(parent *Node, i int, text string) (*Node, error) {
	node, err := e.sess.InsertText(parent.n, i, text)
	if err != nil {
		return nil, err
	}
	return &Node{n: node}, nil
}

// UpdateText replaces a text node's characters (always PV-preserving,
// Theorem 2).
func (e *Session) UpdateText(n *Node, text string) error { return e.sess.UpdateText(n.n, text) }

// DeleteText removes a text node (always PV-preserving, Theorem 2).
func (e *Session) DeleteText(n *Node) error { return e.sess.DeleteText(n.n) }

// Undo reverts the most recent applied operation.
func (e *Session) Undo() bool { return e.sess.Undo() }

// Stats summarizes session activity.
func (e *Session) Stats() (applied, refused int) {
	st := e.sess.Stats()
	return st.Applied, st.Refused
}

// CanInsertMarkup previews the InsertMarkup guard without mutating.
func (e *Session) CanInsertMarkup(parent *Node, i, j int, name string) error {
	return e.schemaOf().CanInsertMarkup(parent.n, i, j, name)
}

func (e *Session) schemaOf() *core.Schema { return e.sess.Schema() }
